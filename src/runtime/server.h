// Multi-session secure-inference server — the deployment shape the
// paper's scalability story implies: the model owner (Bob, evaluator)
// loads one model, compiles its GC chain once, and serves many
// concurrent client sessions over TCP, each with its own channel,
// OT setup, and per-session label seeds on the client side.
//
// Two server cores behind ServerConfig::core, serving the identical v4
// wire protocol:
//
//   * kEventLoop (default): an epoll reactor + small worker pool
//     (runtime/reactor.h). Connections are nonblocking and parked in
//     the epoll set between frames; a readiness event hands the
//     connection to a worker, which resumes its per-session state
//     machine (handshake → lane attach → prefetch/infer frames) and
//     re-parks it. Thread count is workers + 1 (the loop), independent
//     of session count; idle timeouts run on a timer wheel in the loop
//     instead of SO_RCVTIMEO.
//
//   * kThreadPerSession: one accept loop + one handler thread per
//     connected session — the original core, kept for one release so
//     the loadgen bench can compare both under load.
//
// Both cores cap concurrent sessions at `max_sessions` (excess clients
// queue in the listen backlog instead of being dropped) and share the
// compiled chain read-only; the per-circuit flush-point cache is
// thread-safe (see Circuit::gc_flush_points).
//
// Async prefetch lane (protocol v4): a SECOND listener accepts
// dedicated prefetch connections. The hello ack hands each session an
// unguessable lane token + the lane port; a client that opens a lane
// (kAttachLane) streams kPrefetch pushes there while kInfer traffic
// continues on the primary connection — the refill no longer stalls the
// inference pipeline. Both connections share one SessionState (the
// artifact store and its budget accounting), which is also the single
// place global max_prefetch_bytes reservations are made and released,
// so every error/teardown path settles the budget exactly once. Lanes
// do not count against max_sessions (they are bounded at one per
// session by the single-use token), so a full server never deadlocks a
// client opening its lane.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "crypto/prg.h"
#include "net/fault_channel.h"
#include "net/tcp_channel.h"
#include "obs/metrics.h"
#include "runtime/frame.h"
#include "runtime/streaming.h"
#include "synth/layer_circuits.h"

namespace deepsecure::runtime {

class EventCore;

/// Which concurrency engine drives the session protocol (see file
/// header). The wire protocol and every observable metric are the same
/// for both; only the threading model differs.
enum class ServerCore {
  kThreadPerSession,
  kEventLoop,
};

struct ServerConfig {
  uint16_t port = 0;        // 0 = ephemeral (read back via port())
  size_t max_sessions = 8;  // concurrent session cap
  /// Per-session cap on stored prefetched artifacts (offline/online
  /// split): bounds the memory a client can park on the server at
  /// roughly max_prefetch × table bytes per session.
  size_t max_prefetch = 8;
  /// Global byte budget for prefetched table streams across ALL
  /// sessions (0 = unbounded). The per-session quota alone scales
  /// linearly with session count; under thousands of sessions this cap
  /// is what actually protects server memory. Reserved at push time
  /// (the artifact size is fixed by the compiled chain), released when
  /// the artifact is consumed or its session ends; a push that would
  /// exceed the budget is rejected like a quota violation.
  uint64_t max_prefetch_bytes = uint64_t{1} << 30;
  /// Per-session idle timeout in milliseconds; 0 disables. A session
  /// whose client sends nothing for this long is dropped so a stalled
  /// client cannot pin one of the max_sessions slots forever. The
  /// timeout bounds *every* receive and cannot tell "stalled" from
  /// "thinking" — set it above the worst-case client-side gap,
  /// including offline garbling before a cold-pool prefetch.
  /// Thread core: SO_RCVTIMEO. Event core: timer wheel for parked
  /// connections + poll deadline for mid-exchange stalls.
  uint64_t idle_timeout_ms = 0;
  /// Per-phase protocol deadline in milliseconds; 0 disables. Where
  /// idle_timeout_ms bounds the wait BETWEEN frames, this bounds the
  /// time a connection may spend INSIDE serving one dispatch (mid-OT,
  /// mid-push, mid-eval) — a peer that stalls halfway through a
  /// protocol exchange cannot pin a worker slot past this deadline.
  /// Must exceed the worst-case legitimate exchange (an on-demand
  /// garble + transfer takes hundreds of ms on big chains). Thread
  /// core: SO_RCVTIMEO swap while a frame is served. Event core: a
  /// phase entry on the timer wheel, armed at dispatch.
  uint64_t phase_timeout_ms = 0;
  /// Graceful shed (protocol v6): when true, a connection arriving with
  /// all max_sessions slots busy is accepted, told kBusy (with
  /// busy_retry_after_ms as the hint) and closed — instead of the
  /// default silent wait in the listen backlog. Off by default: backlog
  /// queueing is the right shape for closed-loop benches; shedding is
  /// for open-loop overload where queues only add latency.
  bool shed_on_overload = false;
  uint32_t busy_retry_after_ms = 50;
  /// Server-side deterministic fault injection (net/fault_channel.h):
  /// when enabled, every accepted transport is wrapped in a
  /// FaultChannel. Used by robustness tests; rate 0 (default) leaves
  /// the healthy path untouched.
  FaultConfig chaos;
  /// Concurrency engine (see ServerCore). Event loop is the default.
  ServerCore core = ServerCore::kEventLoop;
  /// Event-core worker threads; 0 = auto (2 × hardware_concurrency,
  /// minimum 2 so a session and its prefetch lane can always progress
  /// concurrently). Ignored by the thread-per-session core.
  size_t workers = 0;
  /// Listen backlog for both listeners. Under the event core a full
  /// server parks excess clients here, so size it for the expected
  /// connection burst.
  int backlog = 64;
  /// TCP send submission path for accepted connections (both cores and
  /// the lane listener). kUring is runtime-probed per connection and
  /// silently falls back to the sendmsg path when the kernel refuses
  /// io_uring; stats_json()'s "io" field reports the effective mode.
  IoBackend io = IoBackend::kEpoll;
  StreamConfig stream;
};

class InferenceServer {
 public:
  /// Compiles `spec` into the per-layer chain once; `weights` are the
  /// server's private parameter bits in evaluator-input order (see
  /// weight_bits() in core/deepsecure.h).
  InferenceServer(const synth::ModelSpec& spec, BitVec weights,
                  ServerConfig cfg = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Port actually bound (resolves ephemeral port 0).
  uint16_t port() const { return listener_.port(); }
  /// Dedicated async-prefetch-lane listener port (always ephemeral; the
  /// hello ack advertises it, so clients never need to configure it).
  uint16_t lane_port() const { return lane_listener_.port(); }

  /// Spawn the serving core. Returns immediately.
  void start();

  /// Close the listener, wait for in-flight sessions to finish, join all
  /// threads. Idempotent.
  void stop();

  // Serving counters live in this server's private metrics registry
  // (src/obs/metrics.h); these accessors are thin reads of the sharded
  // counters, per-instance exact, same semantics as the former ad-hoc
  // atomics.
  uint64_t sessions_accepted() const { return c_sessions_accepted_.value(); }
  uint64_t sessions_active() const { return sessions_active_.load(); }
  uint64_t inferences_served() const { return c_inferences_served_.value(); }
  uint64_t sessions_rejected() const { return c_sessions_rejected_.value(); }
  /// Of inferences_served, how many ran the online phase against
  /// prefetched material (the rest garbled on demand).
  uint64_t inferences_pooled() const { return c_inferences_pooled_.value(); }
  uint64_t materials_prefetched() const {
    return c_materials_prefetched_.value();
  }
  /// Bytes currently reserved against max_prefetch_bytes.
  uint64_t prefetch_bytes() const { return prefetch_bytes_.load(); }
  /// kPrefetch pushes rejected because the global budget was exhausted.
  uint64_t prefetches_rejected() const {
    return c_prefetches_rejected_.value();
  }
  /// Prefetch lanes successfully attached to a session (v4).
  uint64_t lanes_attached() const { return c_lanes_attached_.value(); }
  /// kAttachLane attempts rejected (unknown/stale/duplicate token).
  uint64_t lanes_rejected() const { return c_lanes_rejected_.value(); }
  /// Connections turned away with kBusy under shed_on_overload (v6).
  uint64_t sessions_shed() const { return c_sessions_shed_.value(); }
  /// Connections dropped by the per-phase protocol deadline.
  uint64_t phase_timeouts() const { return c_phase_timeouts_.value(); }

  /// This server's full observability surface as one JSON object:
  /// {"core","sessions_active","prefetch_bytes","accounting":{...},
  ///  "metrics":{counters,gauges,hists}}. The accounting block sums the
  /// non-overlapping per-phase histograms (handshake, recv_wait,
  /// infer_*, prefetch_push, parked, dispatch) against session_wall, so
  /// a scaling sweep can say WHERE each session-second went — the
  /// fraction is meaningful once sessions have completed (live sessions
  /// have phases recorded but no wall yet). Safe to call any time from
  /// any thread (relaxed snapshot; see obs/metrics.h).
  std::string stats_json() const;

  /// Direct registry access (tests, exporters). The registry outlives
  /// every session; instrument handles in it are stable.
  const obs::Registry& metrics() const { return metrics_; }

 private:
  friend class EventCore;  // the reactor drives the same protocol state

  // One per session: the thread plus a completion flag so finished
  // handlers can be reaped (joined) while the server keeps running,
  // bounding handlers_ at ~max_sessions instead of total-sessions.
  // (Thread-per-session core only.)
  struct SessionHandle {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  // Per-session state shared between the primary session handler and
  // its (optional) async prefetch lane — the seam both connections
  // synchronize on. `reserved_bytes` mirrors this session's share of
  // the global prefetch_bytes_ reservation so teardown can settle it
  // exactly once; `pending_pushes` holds quota slots for pushes whose
  // material is still in flight on the wire.
  struct SessionState {
    std::mutex mu;
    std::unordered_map<uint64_t, EvalMaterial> store;
    uint64_t reserved_bytes = 0;
    size_t pending_pushes = 0;
    bool closed = false;         // primary session torn down
    bool lane_attached = false;  // at most one lane per session
  };

  // --- protocol steps shared by both cores ---------------------------
  /// Handshake validation; nullptr = accept, else the kError reason.
  const char* validate_hello(const Hello& hello) const;
  /// One kInfer frame (on-demand or pooled). Returns false when the
  /// connection must close (kError already sent).
  bool handle_infer_frame(const Frame& f, BufferedChannel& ch,
                          EvaluatorSession& session, SessionState& state);
  /// One kPrefetch push into `state` (primary connection or lane):
  /// quota + global-budget reservation, artifact receive + size checks,
  /// precomputed-OT label resolution, store. Returns false when the
  /// carrying connection must close (every rejection sent a kError);
  /// on failure the reservation is released immediately — never parked
  /// until teardown.
  bool handle_prefetch_push(const Frame& f, BufferedChannel& ch,
                            EvaluatorSession& session, SessionState& state);
  /// Issue + register a fresh unguessable lane token for `state`.
  uint64_t register_lane_token(const std::shared_ptr<SessionState>& state);
  void unregister_lane_token(uint64_t token);
  /// Resolve a kAttachLane token and mark the session's lane attached.
  /// nullptr on failure with `*reject` set (metrics are the caller's).
  std::shared_ptr<SessionState> attach_lane(uint64_t token,
                                            const char** reject);
  /// Session teardown: close the shared state and return the WHOLE
  /// remaining budget reservation (stored artifacts + in-flight pushes)
  /// in one settlement. A lane mid-push observes `closed` afterwards
  /// and knows not to settle again.
  void settle_session_state(SessionState& state);

  // --- thread-per-session core ---------------------------------------
  void accept_loop();
  void lane_accept_loop();
  void handle_session(std::unique_ptr<TcpChannel> transport,
                      std::shared_ptr<std::atomic<bool>> done);
  void handle_lane(std::unique_ptr<TcpChannel> transport,
                   std::shared_ptr<std::atomic<bool>> done);
  void reap_finished_locked();

  std::vector<Circuit> chain_;
  BitVec weights_;
  ServerConfig cfg_;
  uint64_t fingerprint_ = 0;
  // Exact size of a well-formed artifact's table stream for chain_
  // (consts + half-gate tables per circuit): prefetches that disagree
  // are rejected at push time, not at kInfer time.
  uint64_t expected_table_bytes_ = 0;

  TcpListener listener_;
  TcpListener lane_listener_;
  std::unique_ptr<EventCore> event_core_;  // kEventLoop engine
  std::thread accept_thread_;
  std::thread lane_accept_thread_;
  std::mutex mu_;
  std::condition_variable slot_cv_;  // signaled when a session ends
  std::vector<SessionHandle> handlers_;
  std::vector<TcpChannel*> active_transports_;  // for forced shutdown
  // Live sessions by lane token; a lane attach resolves its session
  // here. Entries die with their session (session teardown erases).
  std::unordered_map<uint64_t, std::shared_ptr<SessionState>> lane_tokens_;
  Prg token_prg_ = Prg::from_os_entropy();  // under mu_
  bool running_ = false;
  bool stopping_ = false;

  // --- observability -------------------------------------------------
  // Per-instance registry (exact per-server counts for tests and serial
  // bench runs). Handles are resolved once here; hot paths touch only
  // the cached references. Two atomics deliberately stay OUTSIDE the
  // registry because they are control variables, not telemetry:
  // prefetch_bytes_ needs fetch_add's atomic read-back for the global
  // budget check, and sessions_active_ gates max_sessions — sharded
  // cells cannot express either.
  obs::Registry metrics_;
  obs::Counter& c_sessions_accepted_ =
      metrics_.counter("server.sessions_accepted");
  obs::Counter& c_inferences_served_ =
      metrics_.counter("server.inferences_served");
  obs::Counter& c_sessions_rejected_ =
      metrics_.counter("server.sessions_rejected");
  obs::Counter& c_inferences_pooled_ =
      metrics_.counter("server.inferences_pooled");
  obs::Counter& c_materials_prefetched_ =
      metrics_.counter("server.materials_prefetched");
  obs::Counter& c_prefetches_rejected_ =
      metrics_.counter("server.prefetches_rejected");
  obs::Counter& c_lanes_attached_ = metrics_.counter("server.lanes_attached");
  obs::Counter& c_lanes_rejected_ = metrics_.counter("server.lanes_rejected");
  obs::Counter& c_sessions_shed_ = metrics_.counter("server.shed");
  obs::Counter& c_phase_timeouts_ = metrics_.counter("server.phase_timeouts");
  obs::Counter& c_bytes_in_ = metrics_.counter("server.bytes_in");
  obs::Counter& c_bytes_out_ = metrics_.counter("server.bytes_out");
  // Non-overlapping wall-time phases (ns observations); their sums vs
  // phase.session_wall form stats_json()'s accounting block.
  obs::Histogram& h_handshake_ = metrics_.histogram("phase.handshake");
  obs::Histogram& h_recv_wait_ = metrics_.histogram("phase.recv_wait");
  obs::Histogram& h_infer_ondemand_ =
      metrics_.histogram("phase.infer_ondemand");
  obs::Histogram& h_infer_online_ = metrics_.histogram("phase.infer_online");
  obs::Histogram& h_prefetch_push_ = metrics_.histogram("phase.prefetch_push");
  obs::Histogram& h_session_wall_ = metrics_.histogram("phase.session_wall");
  obs::Histogram& h_lane_wall_ = metrics_.histogram("phase.lane_wall");
  // Sub-phases nested inside the above (informational, not summed).
  obs::Histogram& h_ot_offline_ = metrics_.histogram("subphase.ot_offline");
  obs::Histogram& h_ot_online_ = metrics_.histogram("subphase.ot_online");
  obs::Histogram& h_eval_ = metrics_.histogram("subphase.eval");
  // Per-session transport byte totals (bytes observations).
  obs::Histogram& h_session_bytes_in_ =
      metrics_.histogram("server.session_bytes_in");
  obs::Histogram& h_session_bytes_out_ =
      metrics_.histogram("server.session_bytes_out");

  std::atomic<uint64_t> sessions_active_{0};
  std::atomic<uint64_t> prefetch_bytes_{0};
  // Per-connection index into the chaos fault plan (cfg_.chaos): each
  // accepted transport gets a distinct deterministic stream.
  std::atomic<uint64_t> chaos_index_{0};
};

}  // namespace deepsecure::runtime
