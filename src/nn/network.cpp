#include "nn/network.h"

#include <stdexcept>

namespace deepsecure::nn {

Network& Network::dense(size_t out, Rng& rng) {
  const Shape in = tip();
  layers_.push_back(std::make_unique<DenseLayer>(in.flat(), out, rng));
  current_ = layers_.back()->out_shape(in);
  return *this;
}

Network& Network::conv(size_t k, size_t stride, size_t out_ch, Rng& rng) {
  const Shape in = tip();
  layers_.push_back(std::make_unique<Conv2DLayer>(in, k, stride, out_ch, rng));
  current_ = layers_.back()->out_shape(in);
  return *this;
}

Network& Network::pool(Pool kind, size_t k, size_t stride) {
  const Shape in = tip();
  layers_.push_back(std::make_unique<PoolLayer>(in, kind, k, stride));
  current_ = layers_.back()->out_shape(in);
  return *this;
}

Network& Network::act(Act kind) {
  const Shape in = tip();
  layers_.push_back(std::make_unique<ActivationLayer>(kind));
  current_ = in;
  return *this;
}

VecF Network::forward(const VecF& x) const {
  VecF v = x;
  for (const auto& layer : layers_) v = layer->forward(v);
  return v;
}

float Network::train_step(const VecF& x, size_t label, float lr,
                          float momentum) {
  VecF v = x;
  for (const auto& layer : layers_) v = layer->forward(v);
  const LossGrad lg = softmax_cross_entropy(v, label);
  VecF g = lg.dlogits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  for (const auto& layer : layers_) layer->step(lr, momentum);
  return lg.loss;
}

Shape Network::output_shape() const { return tip(); }

size_t Network::param_count() const {
  size_t n = 0;
  for (const auto& layer : layers_) n += layer->param_count();
  return n;
}

std::vector<DenseLayer*> Network::dense_layers() {
  std::vector<DenseLayer*> out;
  for (const auto& layer : layers_)
    if (auto* d = dynamic_cast<DenseLayer*>(layer.get())) out.push_back(d);
  return out;
}

}  // namespace deepsecure::nn
