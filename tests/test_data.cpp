#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"

namespace deepsecure::data {
namespace {

TEST(Synthetic, ShapesMatchPaperBenchmarks) {
  const auto isolet = make_isolet_like(52, 1);
  EXPECT_EQ(isolet.x[0].size(), 617u);
  EXPECT_EQ(isolet.num_classes, 26u);

  const auto mnist = make_mnist_like(20, 1);
  EXPECT_EQ(mnist.x[0].size(), 784u);
  EXPECT_EQ(mnist.num_classes, 10u);

  const auto har = make_har_like(19, 1);
  EXPECT_EQ(har.x[0].size(), 5625u);
  EXPECT_EQ(har.num_classes, 19u);
}

TEST(Synthetic, ValuesInUnitRangeAndLabelsBalanced) {
  SyntheticConfig cfg;
  cfg.features = 30;
  cfg.classes = 5;
  cfg.samples = 100;
  const auto ds = make_subspace_dataset(cfg);
  std::vector<int> counts(cfg.classes, 0);
  for (size_t i = 0; i < ds.size(); ++i) {
    counts[ds.y[i]]++;
    for (float v : ds.x[i]) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(Synthetic, DeterministicBySeed) {
  SyntheticConfig cfg;
  cfg.samples = 10;
  const auto a = make_subspace_dataset(cfg);
  const auto b = make_subspace_dataset(cfg);
  EXPECT_EQ(a.x[3], b.x[3]);
  cfg.seed = 99;
  const auto c = make_subspace_dataset(cfg);
  EXPECT_NE(a.x[3], c.x[3]);
}

TEST(Synthetic, LowRankStructureExists) {
  // The generator's premise: class samples concentrate near a low-dim
  // subspace. Verify residual after projecting onto a few same-class
  // samples is much smaller than the sample norm.
  SyntheticConfig cfg;
  cfg.features = 40;
  cfg.classes = 2;
  cfg.samples = 60;
  cfg.subspace_rank = 3;
  cfg.noise = 0.005;
  const auto ds = make_subspace_dataset(cfg);

  // Centered class-0 samples: x_i - x_0 should be ~rank-3.
  // Cheap proxy: the span of 8 samples should absorb a 9th.
  std::vector<const nn::VecF*> class0;
  for (size_t i = 0; i < ds.size(); ++i)
    if (ds.y[i] == 0) class0.push_back(&ds.x[i]);
  ASSERT_GE(class0.size(), 10u);

  // Gram-Schmidt over first 8 vectors, then residual of the 9th.
  std::vector<std::vector<double>> basis;
  auto ortho = [&](std::vector<double> v) {
    for (const auto& u : basis) {
      double p = 0;
      for (size_t i = 0; i < v.size(); ++i) p += u[i] * v[i];
      for (size_t i = 0; i < v.size(); ++i) v[i] -= p * u[i];
    }
    return v;
  };
  for (int k = 0; k < 8; ++k) {
    std::vector<double> v(class0[k]->begin(), class0[k]->end());
    v = ortho(v);
    double n = 0;
    for (double x : v) n += x * x;
    n = std::sqrt(n);
    if (n > 1e-9) {
      for (auto& x : v) x /= n;
      basis.push_back(v);
    }
  }
  std::vector<double> probe(class0[9]->begin(), class0[9]->end());
  double n0 = 0;
  for (double x : probe) n0 += x * x;
  const auto r = ortho(probe);
  double nr = 0;
  for (double x : r) nr += x * x;
  EXPECT_LT(std::sqrt(nr / n0), 0.2);  // >96% of energy in the span
}

}  // namespace
}  // namespace deepsecure::data
