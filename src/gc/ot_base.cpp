// Chou-Orlandi base OT (semi-honest):
//   Sender: a <- random, A = aG. Publish A.
//   Receiver (choice c): b <- random, B = cA + bG. Publish B.
//   Sender keys:   k_j = H(a * (B - jA), i)    for j in {0,1}
//   Receiver key:  k_c = H(b * A, i)
// since a(B - cA) = abG.
#include "gc/ot.h"

#include <cstring>
#include <stdexcept>

#include "crypto/ed25519.h"
#include "crypto/sha256.h"

namespace deepsecure {
namespace {

Ed25519Scalar random_scalar(Prg& prg) {
  Ed25519Scalar k{};
  prg.fill_bytes(k.data(), k.size());
  // Clear the top bit to stay below 2^255 (any scalar works for DH-style
  // use; clamping is unnecessary in the semi-honest setting).
  k[31] &= 0x7F;
  return k;
}

Block point_kdf(const Ed25519Point& p, uint64_t index) {
  const auto enc = p.encode();
  return kdf_block("deepsecure-base-ot", index, enc.data(), enc.size());
}

void send_point(Channel& ch, const Ed25519Point& p) {
  const auto enc = p.encode();
  ch.send_bytes(enc.data(), enc.size());
}

Ed25519Point recv_point(Channel& ch) {
  std::array<uint8_t, 64> enc{};
  ch.recv_bytes(enc.data(), enc.size());
  auto p = Ed25519Point::decode(enc.data());
  if (!p) throw std::runtime_error("base OT: off-curve point received");
  return *p;
}

}  // namespace

// The receiver's B points depend only on its local randomness (and A),
// and the sender's ciphertext pairs only on the B points — so each
// direction travels as one bulk message instead of per-instance
// send/recv ping-pong: A, then all n B points, then all 2n ciphertext
// blocks.
void base_ot_send(Channel& ch, const std::vector<std::pair<Block, Block>>& msgs,
                  Prg& prg) {
  const size_t n = msgs.size();
  const Ed25519Scalar a = random_scalar(prg);
  const Ed25519Point big_a = Ed25519Point::base_mul(a);
  send_point(ch, big_a);

  std::vector<uint8_t> enc_bs(n * 64);
  if (n > 0) ch.recv_bytes(enc_bs.data(), enc_bs.size());
  std::vector<Block> payload(2 * n);
  for (size_t i = 0; i < n; ++i) {
    auto big_b = Ed25519Point::decode(enc_bs.data() + i * 64);
    if (!big_b) throw std::runtime_error("base OT: off-curve point received");
    const Ed25519Point k0_point = Ed25519Point::mul(*big_b, a);
    const Ed25519Point k1_point =
        Ed25519Point::mul(Ed25519Point::sub(*big_b, big_a), a);
    payload[2 * i] = msgs[i].first ^ point_kdf(k0_point, i);
    payload[2 * i + 1] = msgs[i].second ^ point_kdf(k1_point, i);
  }
  if (n > 0) ch.send_blocks(payload.data(), payload.size());
}

std::vector<Block> base_ot_recv(Channel& ch, const BitVec& choices, Prg& prg) {
  const size_t n = choices.size();
  const Ed25519Point big_a = recv_point(ch);

  std::vector<Block> keys(n);
  std::vector<uint8_t> enc_bs(n * 64);
  for (size_t i = 0; i < n; ++i) {
    const Ed25519Scalar b = random_scalar(prg);
    Ed25519Point big_b = Ed25519Point::base_mul(b);
    if (choices[i]) big_b = Ed25519Point::add(big_b, big_a);
    const auto enc = big_b.encode();
    std::memcpy(enc_bs.data() + i * 64, enc.data(), enc.size());
    keys[i] = point_kdf(Ed25519Point::mul(big_a, b), i);
  }
  if (n > 0) ch.send_bytes(enc_bs.data(), enc_bs.size());

  std::vector<Block> payload(2 * n);
  if (n > 0) ch.recv_blocks(payload.data(), payload.size());
  std::vector<Block> out(n);
  for (size_t i = 0; i < n; ++i)
    out[i] = payload[2 * i + (choices[i] ? 1 : 0)] ^ keys[i];
  return out;
}

}  // namespace deepsecure
