// Deterministic, seedable pseudo-random generator used everywhere except
// the cryptographic label sampling (which uses crypto/prg.h).
//
// xoshiro256** — small, fast, and good enough for workload synthesis,
// test sweeps and reproducible experiments. NOT cryptographically secure.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace deepsecure {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-seed via splitmix64 so that nearby seeds yield unrelated streams.
  void reseed(uint64_t seed);

  uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Gaussian via Box-Muller.
  double next_gaussian(double mean = 0.0, double stddev = 1.0);

  /// Uniform double in [lo, hi).
  double next_uniform(double lo, double hi);

  bool next_bool() { return (next_u64() & 1u) != 0; }

  /// Fill `n` bytes.
  void fill_bytes(void* dst, size_t n);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<size_t> permutation(size_t n);

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace deepsecure
