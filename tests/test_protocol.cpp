#include <gtest/gtest.h>

#include "gc/protocol.h"
#include "net/party.h"
#include "synth/layer_circuits.h"
#include "synth/matvec.h"
#include "test_util.h"

namespace deepsecure {
namespace {

using synth::ActKind;
using synth::ActLayer;
using synth::ArgmaxLayer;
using synth::FcLayer;
using synth::ModelSpec;
using synth::Shape3;
using test::pack_fixed;
using test::random_fixed;

constexpr FixedFormat kFmt = kDefaultFormat;

// Full protocol run (OT included) over a chain of circuits.
BitVec protocol_run(const std::vector<Circuit>& chain, const BitVec& data,
                    const BitVec& weights, SessionTrace* garbler_trace = nullptr) {
  BitVec client_out, server_out;
  run_two_party(
      [&](Channel& ch) {
        GarblerSession session(ch, Block{2024, 6});
        client_out = session.run_chain(chain, data);
        if (garbler_trace != nullptr) *garbler_trace = session.trace();
      },
      [&](Channel& ch) {
        EvaluatorSession session(ch);
        server_out = session.run_chain(chain, weights);
      });
  EXPECT_EQ(client_out, server_out);
  return client_out;
}

TEST(Protocol, SingleCircuitMatchesPlaintext) {
  const Circuit c = synth::make_matvec_circuit(4, 2, kFmt);
  Rng rng(1);
  std::vector<Fixed> x, w;
  for (int i = 0; i < 4; ++i) x.push_back(random_fixed(rng, kFmt, 0.1));
  for (int i = 0; i < 8; ++i) w.push_back(random_fixed(rng, kFmt, 0.1));
  const BitVec data = pack_fixed(x), weights = pack_fixed(w);

  const BitVec expect = c.eval(data, weights);
  const BitVec got = protocol_run({c}, data, weights);
  EXPECT_EQ(got, expect);
}

TEST(Protocol, ChainedLayersCarryLabels) {
  ModelSpec spec;
  spec.name = "chain";
  spec.input = Shape3{1, 1, 6};
  spec.layers.push_back(FcLayer{5, {}, true});
  spec.layers.push_back(ActLayer{ActKind::kReLU});
  spec.layers.push_back(FcLayer{3, {}, true});
  spec.layers.push_back(ArgmaxLayer{});
  const auto layers = synth::compile_model_layers(spec);
  const Circuit mono = synth::compile_model(spec);

  Rng rng(2);
  std::vector<Fixed> x, w;
  for (size_t i = 0; i < 6; ++i) x.push_back(random_fixed(rng, kFmt, 0.2));
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
    w.push_back(random_fixed(rng, kFmt, 0.2));
  const BitVec data = pack_fixed(x), weights = pack_fixed(w);

  const BitVec expect = mono.eval(data, weights);
  SessionTrace trace;
  const BitVec got = protocol_run(layers, data, weights, &trace);
  EXPECT_EQ(got, expect);
  // One phase per layer; OT setup tracked separately.
  EXPECT_EQ(trace.phases.size(), layers.size());
  EXPECT_GT(trace.setup_s, 0.0);
  EXPECT_GT(trace.sum_garble(), 0.0);
}

TEST(Protocol, TanhNetworkEndToEnd) {
  ModelSpec spec;
  spec.name = "tanh_net";
  spec.input = Shape3{1, 1, 4};
  spec.layers.push_back(FcLayer{3, {}, true});
  spec.layers.push_back(ActLayer{ActKind::kTanhSeg});
  spec.layers.push_back(FcLayer{2, {}, true});
  spec.layers.push_back(ArgmaxLayer{});
  const Circuit mono = synth::compile_model(spec);

  Rng rng(3);
  std::vector<Fixed> x, w;
  for (size_t i = 0; i < 4; ++i) x.push_back(random_fixed(rng, kFmt, 0.3));
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
    w.push_back(random_fixed(rng, kFmt, 0.3));
  const BitVec data = pack_fixed(x), weights = pack_fixed(w);

  const BitVec got = protocol_run({mono}, data, weights);
  EXPECT_EQ(got, mono.eval(data, weights));
}

TEST(Protocol, SequentialMacMatchesPlaintext) {
  const Circuit step = synth::make_mac_step_circuit(kFmt);
  Rng rng(4);
  const size_t cycles = 7;
  std::vector<Fixed> x, w;
  for (size_t i = 0; i < cycles; ++i) {
    x.push_back(random_fixed(rng, kFmt, 0.15));
    w.push_back(random_fixed(rng, kFmt, 0.15));
  }
  const BitVec data = pack_fixed(x), weights = pack_fixed(w);
  const BitVec expect = eval_sequential(step, cycles, data, weights);

  BitVec client_out, server_out;
  run_two_party(
      [&](Channel& ch) {
        GarblerSession session(ch, Block{5, 5});
        client_out = session.run_sequential(step, cycles, data);
      },
      [&](Channel& ch) {
        EvaluatorSession session(ch);
        server_out = session.run_sequential(step, cycles, weights);
      });
  EXPECT_EQ(client_out, expect);
  EXPECT_EQ(server_out, expect);
}

// Offline/online split at the session level: garble_offline + material
// push + precomputed OTs, then an online run that only moves active
// data labels — must agree with plaintext and with the on-demand path.
TEST(Protocol, OfflineOnlineSplitMatchesOnDemand) {
  ModelSpec spec;
  spec.name = "offline_chain";
  spec.input = Shape3{1, 1, 6};
  spec.layers.push_back(FcLayer{5, {}, true});
  spec.layers.push_back(ActLayer{ActKind::kReLU});
  spec.layers.push_back(FcLayer{3, {}, true});
  spec.layers.push_back(ArgmaxLayer{});
  const auto chain = synth::compile_model_layers(spec);

  Rng rng(11);
  std::vector<Fixed> x, w;
  for (size_t i = 0; i < 6; ++i) x.push_back(random_fixed(rng, kFmt, 0.2));
  for (size_t i = 0; i < synth::model_weight_count(spec); ++i)
    w.push_back(random_fixed(rng, kFmt, 0.2));
  const BitVec data = pack_fixed(x), weights = pack_fixed(w);
  const BitVec expect = synth::compile_model(spec).eval(data, weights);

  BitVec online_g, online_e, ondemand_g;
  run_two_party(
      [&](Channel& ch) {
        GarblerSession session(ch, Block{2026, 7});
        // Offline: one artifact, its OTs, and its label resolution.
        const GarbledMaterial mat =
            garble_offline(chain, Block{4242, 99});
        // The artifact stamps the walked (scheduled-by-default) order.
        EXPECT_EQ(mat.fingerprint,
                  chain_fingerprint(chain, GcOptions{}.schedule));
        EXPECT_EQ(mat.decode_bits.size(), chain.back().outputs.size());
        send_material(ch, mat);
        const OtPrecompSender pre = session.precompute_ot(mat.ot_count());
        session.send_labels_derandomized(pre, mat.eval_zeros, mat.delta);
        // Online: active data labels out, result bits back.
        online_g = session.run_online(mat, data);
        // The same session still supports on-demand runs afterwards.
        ondemand_g = session.run_chain(chain, data);
      },
      [&](Channel& ch) {
        EvaluatorSession session(ch);
        EvalMaterial mat = recv_material(ch);
        const OtPrecompReceiver pre =
            session.precompute_ot(weights.size());
        mat.eval_labels = session.recv_labels_derandomized(pre, weights);
        online_e = session.run_online(chain, mat);
        session.run_chain(chain, weights);
      });

  EXPECT_EQ(online_g, expect);
  EXPECT_EQ(online_e, expect);
  EXPECT_EQ(ondemand_g, expect);
}

// A consumed artifact self-checks: evaluate_material validates label
// counts and rejects surplus table bytes.
TEST(Protocol, EvaluateMaterialValidatesArtifact) {
  ModelSpec spec;
  spec.name = "tiny";
  spec.input = Shape3{1, 1, 2};
  spec.layers.push_back(FcLayer{2, {}, true});
  const auto chain = synth::compile_model_layers(spec);

  GarbledMaterial mat = garble_offline(chain, Block{1, 2});
  EvalMaterial em;
  em.decode_bits = mat.decode_bits;
  em.tables = mat.tables;
  em.eval_labels = Labels(mat.ot_count() + 1, kZeroBlock);  // wrong count
  const Labels g(chain.front().garbler_inputs.size(), kZeroBlock);
  EXPECT_THROW(evaluate_material(chain, em, g), std::invalid_argument);

  em.eval_labels.pop_back();
  em.tables.resize(em.tables.size() + 16);  // trailing garbage
  EXPECT_THROW(evaluate_material(chain, em, g), std::runtime_error);
}

TEST(Protocol, CommunicationDominatedByTables) {
  const Circuit c = synth::make_matvec_circuit(8, 4, kFmt);
  Rng rng(6);
  std::vector<Fixed> x, w;
  for (int i = 0; i < 8; ++i) x.push_back(random_fixed(rng, kFmt, 0.1));
  for (int i = 0; i < 32; ++i) w.push_back(random_fixed(rng, kFmt, 0.1));

  uint64_t a_to_b = 0;
  const auto stats = run_two_party(
      [&](Channel& ch) {
        GarblerSession session(ch, Block{7, 7});
        session.run_chain({c}, pack_fixed(x));
      },
      [&](Channel& ch) {
        EvaluatorSession session(ch);
        session.run_chain({c}, pack_fixed(w));
      });
  a_to_b = stats.a_to_b_bytes;
  // Garbled tables alone are 32 bytes per AND gate.
  EXPECT_GT(a_to_b, c.stats().table_bytes());
  EXPECT_LT(a_to_b, c.stats().table_bytes() * 3 / 2);
}

}  // namespace
}  // namespace deepsecure
