#include "preprocess/linalg.h"

#include <cmath>
#include <stdexcept>

namespace deepsecure::preprocess {

std::vector<double> Matrix::col(size_t c) const {
  std::vector<double> x(rows_);
  for (size_t r = 0; r < rows_; ++r) x[r] = at(r, c);
  return x;
}

void Matrix::set_col(size_t c, const std::vector<double>& x) {
  if (x.size() != rows_) throw std::invalid_argument("set_col size");
  for (size_t r = 0; r < rows_; ++r) at(r, c) = x[r];
}

void Matrix::append_col(const std::vector<double>& x) {
  if (empty()) {
    rows_ = x.size();
    cols_ = 0;
    v_.clear();
  }
  if (x.size() != rows_) throw std::invalid_argument("append_col size");
  v_.insert(v_.end(), x.begin(), x.end());
  ++cols_;
}

Matrix Matrix::identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul dims");
  Matrix c(a.rows(), b.cols());
  for (size_t j = 0; j < b.cols(); ++j)
    for (size_t k = 0; k < a.cols(); ++k) {
      const double bkj = b.at(k, j);
      if (bkj == 0.0) continue;
      for (size_t i = 0; i < a.rows(); ++i) c.at(i, j) += a.at(i, k) * bkj;
    }
  return c;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("matsub dims");
  Matrix c(a.rows(), a.cols());
  for (size_t j = 0; j < a.cols(); ++j)
    for (size_t i = 0; i < a.rows(); ++i) c.at(i, j) = a.at(i, j) - b.at(i, j);
  return c;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (size_t j = 0; j < cols_; ++j)
    for (size_t i = 0; i < rows_; ++i) t.at(j, i) = at(i, j);
  return t;
}

double Matrix::frobenius() const {
  double s = 0.0;
  for (double x : v_) s += x * x;
  return std::sqrt(s);
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

namespace {

// Cholesky factorization of an SPD matrix (in place, lower triangle).
void cholesky(Matrix& g) {
  const size_t n = g.rows();
  for (size_t j = 0; j < n; ++j) {
    double d = g.at(j, j);
    for (size_t k = 0; k < j; ++k) d -= g.at(j, k) * g.at(j, k);
    if (d <= 0.0) throw std::runtime_error("cholesky: not SPD");
    g.at(j, j) = std::sqrt(d);
    for (size_t i = j + 1; i < n; ++i) {
      double s = g.at(i, j);
      for (size_t k = 0; k < j; ++k) s -= g.at(i, k) * g.at(j, k);
      g.at(i, j) = s / g.at(j, j);
    }
  }
}

std::vector<double> chol_solve(const Matrix& l, std::vector<double> b) {
  const size_t n = l.rows();
  // Forward substitution L y = b.
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < i; ++k) b[i] -= l.at(i, k) * b[k];
    b[i] /= l.at(i, i);
  }
  // Back substitution L^T x = y.
  for (size_t i = n; i-- > 0;) {
    for (size_t k = i + 1; k < n; ++k) b[i] -= l.at(k, i) * b[k];
    b[i] /= l.at(i, i);
  }
  return b;
}

}  // namespace

std::vector<double> least_squares(const Matrix& a,
                                  const std::vector<double>& b) {
  if (a.empty()) return {};
  const size_t n = a.cols();
  Matrix gram(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = i; j < n; ++j) {
      double s = 0.0;
      for (size_t r = 0; r < a.rows(); ++r) s += a.at(r, i) * a.at(r, j);
      gram.at(i, j) = gram.at(j, i) = s;
    }
  // Tikhonov nudge for numerical safety on nearly-dependent columns.
  for (size_t i = 0; i < n; ++i) gram.at(i, i) += 1e-10;
  std::vector<double> rhs(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t r = 0; r < a.rows(); ++r) rhs[i] += a.at(r, i) * b[r];
  }
  cholesky(gram);
  return chol_solve(gram, std::move(rhs));
}

double projection_residual(const Matrix& a, const std::vector<double>& b) {
  const double nb = norm(b);
  if (nb == 0.0) return 0.0;
  if (a.empty()) return 1.0;
  const std::vector<double> x = least_squares(a, b);
  std::vector<double> r = b;
  for (size_t c = 0; c < a.cols(); ++c)
    for (size_t i = 0; i < a.rows(); ++i) r[i] -= a.at(i, c) * x[c];
  return norm(r) / nb;
}

Matrix orthonormal_basis(const Matrix& a, double tol) {
  Matrix u;
  for (size_t c = 0; c < a.cols(); ++c) {
    std::vector<double> v = a.col(c);
    for (size_t k = 0; k < u.cols(); ++k) {
      const std::vector<double> uk = u.col(k);
      const double proj = dot(uk, v);
      for (size_t i = 0; i < v.size(); ++i) v[i] -= proj * uk[i];
    }
    const double nv = norm(v);
    if (nv < tol) continue;  // dependent column
    for (auto& x : v) x /= nv;
    u.append_col(v);
  }
  return u;
}

Matrix projector(const Matrix& a) {
  const Matrix u = orthonormal_basis(a);
  if (u.empty()) return Matrix(a.rows(), a.rows());
  return u * u.transpose();
}

}  // namespace deepsecure::preprocess
