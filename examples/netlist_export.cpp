// Netlist export tool: synthesize any Table-3 block or paper benchmark
// into the text netlist format (circuit/netlist_io.h) for inspection,
// diffing, archival, or consumption by an external GC engine.
//
//   ./netlist_export                   # list available circuits
//   ./netlist_export mult out.netlist  # write one circuit
//   ./netlist_export b3 -              # benchmark 3 to stdout (header only)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>

#include "circuit/netlist_io.h"
#include "core/benchmark_zoo.h"
#include "synth/activation.h"
#include "synth/cordic.h"
#include "synth/divider.h"
#include "synth/matvec.h"
#include "synth/mult.h"
#include "synth/softmax.h"

using namespace deepsecure;
using namespace deepsecure::synth;

namespace {

template <typename Fn>
Circuit unary(const char* name, Fn&& fn) {
  Builder b(name);
  const Bus x = input_fixed(b, Party::kGarbler, kDefaultFormat);
  b.outputs(fn(b, x, kDefaultFormat));
  return b.build();
}

std::map<std::string, std::function<Circuit()>> registry() {
  std::map<std::string, std::function<Circuit()>> r;
  r["add"] = [] {
    Builder b("add16");
    const Bus x = input_fixed(b, Party::kGarbler, kDefaultFormat);
    const Bus y = input_fixed(b, Party::kEvaluator, kDefaultFormat);
    b.outputs(add(b, x, y));
    return b.build();
  };
  r["mult"] = [] {
    Builder b("mult16");
    const Bus x = input_fixed(b, Party::kGarbler, kDefaultFormat);
    const Bus y = input_fixed(b, Party::kEvaluator, kDefaultFormat);
    b.outputs(mult_fixed(b, x, y, kDefaultFormat.frac_bits));
    return b.build();
  };
  r["div"] = [] {
    Builder b("div16");
    const Bus x = input_fixed(b, Party::kGarbler, kDefaultFormat);
    const Bus y = input_fixed(b, Party::kEvaluator, kDefaultFormat);
    b.outputs(div_signed(b, x, y));
    return b.build();
  };
  r["relu"] = [] {
    return unary("relu16", [](Builder& b, const Bus& x, FixedFormat) {
      return relu(b, x);
    });
  };
  r["tanh_cordic"] = [] {
    return unary("tanh_cordic", [](Builder& b, const Bus& x, FixedFormat f) {
      return tanh_cordic(b, x, f);
    });
  };
  r["sigmoid_plan"] = [] {
    return unary("sigmoid_plan", [](Builder& b, const Bus& x, FixedFormat f) {
      return activation(b, x, ActKind::kSigmoidPLAN, f);
    });
  };
  r["argmax10"] = [] {
    Builder b("argmax10");
    std::vector<Bus> vals(10);
    for (auto& bus : vals) bus = input_fixed(b, Party::kGarbler, kDefaultFormat);
    b.outputs(argmax(b, vals));
    return b.build();
  };
  r["matvec16x4"] = [] { return make_matvec_circuit(16, 4, kDefaultFormat); };
  r["mac_step"] = [] { return make_mac_step_circuit(kDefaultFormat); };
  // Paper benchmark 3 (the only one that is sensible to materialize).
  r["b3"] = [] { return compile_model(core::paper_zoo()[2].base); };
  r["b3_pp"] = [] { return compile_model(core::paper_zoo()[2].compact); };
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto reg = registry();
  if (argc < 2) {
    std::printf("usage: %s <circuit> [out.netlist|-]\n\navailable:\n",
                argv[0]);
    for (const auto& [name, make] : reg) {
      const Circuit c = make();
      const auto s = c.stats();
      std::printf("  %-12s %8llu XOR  %8llu non-XOR  %6zu in  %4zu out\n",
                  name.c_str(), static_cast<unsigned long long>(s.num_xor),
                  static_cast<unsigned long long>(s.num_and),
                  static_cast<size_t>(s.num_inputs),
                  static_cast<size_t>(s.num_outputs));
    }
    return 0;
  }

  const auto it = reg.find(argv[1]);
  if (it == reg.end()) {
    std::fprintf(stderr, "unknown circuit '%s' (run with no args to list)\n",
                 argv[1]);
    return 1;
  }
  const Circuit c = it->second();
  const std::string out = argc >= 3 ? argv[2] : std::string(argv[1]) + ".netlist";

  if (out == "-") {
    const auto s = c.stats();
    std::printf("netlist %s: %llu gates (%llu non-XOR), %u wires\n",
                c.name.c_str(),
                static_cast<unsigned long long>(s.num_xor + s.num_and),
                static_cast<unsigned long long>(s.num_and), c.num_wires);
    return 0;
  }
  std::ofstream f(out);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  write_netlist(f, c);
  f.close();
  const auto s = c.stats();
  std::printf("wrote %s: %llu gates (%llu non-XOR), round-trip check... ",
              out.c_str(),
              static_cast<unsigned long long>(s.num_xor + s.num_and),
              static_cast<unsigned long long>(s.num_and));
  // Verify the file parses back to an identical netlist.
  std::ifstream in(out);
  const Circuit back = read_netlist(in);
  std::printf("%s\n", back.gates.size() == c.gates.size() &&
                              back.num_wires == c.num_wires
                          ? "ok"
                          : "MISMATCH");
  return 0;
}
