#include <gtest/gtest.h>

#include "core/deepsecure.h"
#include "data/synthetic.h"

namespace deepsecure {
namespace {

nn::Network trained_toy_net(const nn::Dataset& ds, nn::Act act,
                            size_t hidden, uint64_t seed) {
  Rng rng(seed);
  nn::Network net(nn::Shape{1, 1, ds.x[0].size()});
  net.dense(hidden, rng).act(act).dense(ds.num_classes, rng);
  nn::TrainConfig tc;
  tc.epochs = 10;
  nn::train(net, ds, tc);
  return net;
}

nn::Dataset toy_data(uint64_t seed) {
  data::SyntheticConfig cfg;
  cfg.features = 10;
  cfg.classes = 3;
  cfg.samples = 180;
  cfg.seed = seed;
  return data::make_subspace_dataset(cfg);
}

TEST(ModelSpec, MirrorsNetworkTopology) {
  const nn::Dataset ds = toy_data(41);
  nn::Network net = trained_toy_net(ds, nn::Act::kTanh, 6, 1);
  SecureInferenceOptions opt;
  opt.tanh_variant = synth::ActKind::kTanhSeg;
  const synth::ModelSpec spec = model_spec_from_network(net, opt);

  ASSERT_EQ(spec.layers.size(), 4u);  // fc, act, fc, argmax
  EXPECT_TRUE(std::holds_alternative<synth::FcLayer>(spec.layers[0]));
  const auto& act = std::get<synth::ActLayer>(spec.layers[1]);
  EXPECT_EQ(act.kind, synth::ActKind::kTanhSeg);
  EXPECT_TRUE(std::holds_alternative<synth::ArgmaxLayer>(spec.layers.back()));
  EXPECT_EQ(synth::model_weight_count(spec), net.param_count());
}

TEST(SecureInfer, MatchesFixedPointPrediction) {
  const nn::Dataset ds = toy_data(42);
  nn::Network net = trained_toy_net(ds, nn::Act::kReLU, 6, 2);

  SecureInferenceOptions opt;
  opt.seed = Block{99, 99};
  int agree = 0;
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    const SecureInferenceResult res = secure_infer(net, ds.x[i], opt);
    const size_t expect = nn::fixed_predict(net, ds.x[i], opt.fmt);
    EXPECT_EQ(res.label, expect) << "sample " << i;
    agree += res.label == expect;
    EXPECT_GT(res.client_to_server_bytes, res.gates.comm_bytes());
    EXPECT_GT(res.gates.num_non_xor, 0u);
  }
  EXPECT_EQ(agree, n);
}

TEST(SecureInfer, TanhCordicPathAgreesWithFloatModel) {
  const nn::Dataset ds = toy_data(43);
  nn::Network net = trained_toy_net(ds, nn::Act::kTanh, 5, 3);

  SecureInferenceOptions opt;
  opt.seed = Block{7, 8};
  // The CORDIC tanh differs from float tanh by <= ~2 LSB; class
  // decisions should still agree with the float model on all but
  // borderline samples. Require strong majority agreement.
  int agree = 0;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    const SecureInferenceResult res = secure_infer(net, ds.x[i], opt);
    agree += res.label == net.predict(ds.x[i]);
  }
  EXPECT_GE(agree, n - 1);
}

TEST(SecureInfer, MonolithicAndPerLayerAgree) {
  const nn::Dataset ds = toy_data(44);
  nn::Network net = trained_toy_net(ds, nn::Act::kReLU, 4, 4);
  SecureInferenceOptions layered;
  layered.seed = Block{1, 1};
  SecureInferenceOptions mono = layered;
  mono.per_layer = false;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(secure_infer(net, ds.x[i], layered).label,
              secure_infer(net, ds.x[i], mono).label);
  }
}

TEST(SecureInfer, PrunedModelRunsAndShrinksTraffic) {
  const nn::Dataset ds = toy_data(45);
  nn::Network net = trained_toy_net(ds, nn::Act::kReLU, 8, 5);
  SecureInferenceOptions opt;
  opt.seed = Block{3, 3};
  const auto before = secure_infer(net, ds.x[0], opt);

  preprocess::PruneConfig pc;
  pc.prune_fraction = 0.8;
  pc.rounds = 2;
  pc.retrain_epochs = 4;
  preprocess::prune_and_retrain(net, ds, pc);
  const auto after = secure_infer(net, ds.x[0], opt);

  EXPECT_LT(after.gates.num_non_xor, before.gates.num_non_xor / 2);
  EXPECT_LT(after.client_to_server_bytes, before.client_to_server_bytes / 2);
  EXPECT_EQ(after.label, nn::fixed_predict(net, ds.x[0], opt.fmt));
}

TEST(SecureInferOutsourced, AgreesWithDirectMode) {
  const nn::Dataset ds = toy_data(46);
  nn::Network net = trained_toy_net(ds, nn::Act::kReLU, 5, 6);
  SecureInferenceOptions opt;
  opt.seed = Block{11, 12};
  for (int i = 0; i < 3; ++i) {
    const auto direct = secure_infer(net, ds.x[i], opt);
    const auto outsourced = secure_infer_outsourced(net, ds.x[i], opt);
    EXPECT_EQ(direct.label, outsourced.label) << i;
  }
}

TEST(PreprocessPipeline, ImprovesCostKeepsAccuracy) {
  data::SyntheticConfig cfg;
  cfg.features = 48;
  cfg.classes = 3;
  cfg.samples = 300;
  cfg.subspace_rank = 4;
  cfg.noise = 0.01;
  cfg.seed = 47;
  const nn::Dataset all = data::make_subspace_dataset(cfg);
  const nn::Split split = nn::split_dataset(all, 0.8);

  PreprocessConfig pc;
  pc.hidden = 16;
  pc.projection.gamma = 0.2;
  pc.prune.prune_fraction = 0.6;
  pc.prune.rounds = 2;
  pc.prune.retrain_epochs = 5;
  pc.retrain.epochs = 12;

  const PreprocessOutcome out =
      preprocess_pipeline(split.train, split.test, nn::Act::kReLU, pc);

  EXPECT_GT(out.baseline_accuracy, 0.8f);
  EXPECT_GE(out.condensed_accuracy, out.baseline_accuracy - 0.1f);
  EXPECT_LT(out.cost_after.comm_bytes, out.cost_before.comm_bytes);
  EXPECT_LT(out.projection.embed_dim, 48u);
  EXPECT_GT(out.prune.overall_sparsity, 0.4);
}

}  // namespace
}  // namespace deepsecure
