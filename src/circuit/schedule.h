// Width-aware netlist rescheduling — the compiler stage between circuit
// construction and garbling.
//
// The batched hashing pipeline (gc/batch_walk.h) drains its pending
// AND-gate window whenever a gate reads a wire produced by a
// still-pending AND. Builders and the synth layer emit gates in
// construction order — lane by lane, carry chain by carry chain — so on
// arithmetic netlists the window flushes every few gates and the AES
// pipeline never fills. This pass rewrites a topologically-ordered
// Circuit into a width-maximizing order:
//
//   * levelized list scheduling: every gate is assigned an AND-depth
//     level (the number of AND gates on its longest input path), and
//     gates are emitted level by level. All AND gates of one level are
//     mutually independent — one matvec's carry chains interleave
//     across all lanes/bit-slices into a single wide batch window.
//   * deferred free-XOR: within a level, XOR gates are emitted before
//     the level's ANDs. An XOR consuming a previous level's AND output
//     therefore lands exactly at the level boundary where the window
//     must drain anyway — XOR consumers never force an extra flush.
//
// The result is one dependency flush per AND level (the netlist's
// multiplicative depth) instead of one per construction-order hazard.
//
// Invariants:
//   * wire ids are untouched — only the gate list is permuted — so
//     inputs, outputs, state bindings, and the plaintext oracle
//     (Circuit::eval) are unchanged, and label vectors indexed by wire
//     id work on either order.
//   * the schedule is a pure, deterministic function of the gate list
//     (plus optional lane tags), so two endpoints that compiled the
//     same netlist compute the same order. The protocol's table stream
//     and tweak sequence follow gate order, so both parties MUST walk
//     the same schedule — the chain fingerprint is computed over the
//     scheduled netlist and cross-checked in the runtime handshake.
//   * scheduling happens behind GcOptions::schedule (default on); the
//     unscheduled construction order is retained as the correctness
//     oracle (DEEPSECURE_NO_SCHEDULE=1 forces it process-wide).
#pragma once

#include <vector>

#include "circuit/circuit.h"

namespace deepsecure {

struct ScheduleResult {
  /// Same circuit, gates permuted into the levelized order (gate_lanes
  /// permuted alongside). validate() holds on the result.
  Circuit circuit;
  /// gate_map[i] = original index of the gate at scheduled position i.
  std::vector<uint32_t> gate_map;
};

/// Reschedule `c` (see file header). O(gates + wires) time and memory.
ScheduleResult schedule_circuit(const Circuit& c);

/// Batch-window shape of a gate order: simulates the batched walk
/// (dependency flush points + a `capacity` cap, kGcMaxBatchWindow in
/// the real pipeline) and reports the AND-gate width of every drained
/// window. The schedule quality metric for benches and regressions.
struct WindowStats {
  size_t and_gates = 0;
  size_t windows = 0;       // drain events with at least one AND
  size_t flush_points = 0;  // dependency flushes in the gate order
  double mean = 0.0;        // AND gates per window
  size_t p50 = 0;
  size_t p95 = 0;
  size_t max = 0;
};

WindowStats window_stats(const Circuit& c, size_t capacity);

}  // namespace deepsecure
