#include "preprocess/projection.h"

#include <cmath>

namespace deepsecure::preprocess {

nn::VecF ProjectionResult::project(const nn::VecF& x) const {
  nn::VecF y(embed_dim, 0.0f);
  for (size_t c = 0; c < embed_dim; ++c) {
    double s = 0.0;
    for (size_t r = 0; r < input_dim; ++r)
      s += basis.at(r, c) * static_cast<double>(x[r]);
    y[c] = static_cast<float>(s * embed_scale);
  }
  return y;
}

nn::VecF ProjectionResult::project_full(const nn::VecF& x) const {
  const nn::VecF e = project(x);
  nn::VecF y(input_dim, 0.0f);
  for (size_t c = 0; c < embed_dim; ++c)
    for (size_t r = 0; r < input_dim; ++r)
      y[r] += static_cast<float>(basis.at(r, c) / embed_scale) * e[c];
  return y;
}

nn::Dataset ProjectionResult::embed(const nn::Dataset& data) const {
  nn::Dataset out;
  out.num_classes = data.num_classes;
  out.y = data.y;
  out.x.reserve(data.size());
  for (const auto& x : data.x) out.x.push_back(project(x));
  return out;
}

ProjectionResult learn_projection(const nn::Dataset& data,
                                  const ProjectionConfig& cfg) {
  ProjectionResult res;
  if (data.size() == 0) return res;
  const size_t m = data.x[0].size();
  res.input_dim = m;

  Matrix d;  // growing dictionary (Algorithm 1's D)
  Matrix u;  // incrementally-maintained orthonormal basis of span(D)
  double residual_sum = 0.0;
  size_t count = 0;

  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<double> a(m);
    for (size_t r = 0; r < m; ++r) a[r] = static_cast<double>(data.x[i][r]);
    const double na = norm(a);
    if (na == 0.0) continue;

    // Vp(a) = ||D D+ a - a|| / ||a||  (Algorithm 1 line 15). Computed
    // against the running orthonormal basis (same span as D), which
    // keeps the pass O(m*l) per sample.
    std::vector<double> resid = a;
    for (size_t c = 0; c < u.cols(); ++c) {
      double proj = 0.0;
      for (size_t r = 0; r < m; ++r) proj += u.at(r, c) * resid[r];
      for (size_t r = 0; r < m; ++r) resid[r] -= proj * u.at(r, c);
    }
    const double vp = norm(resid) / na;
    residual_sum += vp;
    ++count;

    if (vp > cfg.gamma && d.cols() < cfg.max_dict) {
      // D <- [D, a / ||a||]   (line 24; normalized column).
      std::vector<double> col = a;
      for (auto& x : col) x /= na;
      d.append_col(col);
      // Grow U by the normalized residual direction.
      const double nr = norm(resid);
      if (nr > 1e-12) {
        for (auto& x : resid) x /= nr;
        u.append_col(resid);
      }
    }
  }

  res.dictionary = d;
  res.basis = u;
  res.embed_dim = res.basis.cols();

  // Calibrate the public output scale so embedded training samples stay
  // well inside the default fixed-point range.
  double max_abs = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t c = 0; c < res.embed_dim; ++c) {
      double s = 0.0;
      for (size_t r = 0; r < m; ++r)
        s += u.at(r, c) * static_cast<double>(data.x[i][r]);
      max_abs = std::max(max_abs, std::abs(s));
    }
  }
  if (max_abs > 3.9) res.embed_scale = 3.9 / max_abs;
  res.mean_residual = count > 0 ? residual_sum / static_cast<double>(count)
                                : 0.0;
  return res;
}

}  // namespace deepsecure::preprocess
