#include "circuit/sequential.h"

// SequentialSpec is header-only today; this TU anchors the target and
// keeps a home for future folding transformations (auto-retiming etc.).
