#include "synth/layer_circuits.h"

#include <stdexcept>

#include "synth/mult.h"

namespace deepsecure::synth {
namespace {

size_t pool_out_dim(size_t in, size_t k, size_t stride) {
  if (in < k) throw std::invalid_argument("pool window larger than input");
  return (in - k) / stride + 1;
}

struct Compiler {
  Builder& b;
  FixedFormat fmt;

  std::vector<Bus> apply(const Shape3& shape, std::vector<Bus> x,
                         const LayerSpec& layer) {
    return std::visit([&](const auto& l) { return apply_one(shape, x, l); },
                      layer);
  }

  std::vector<Bus> apply_one(const Shape3& shape, const std::vector<Bus>& x,
                             const FcLayer& l) {
    const size_t in = shape.flat();
    if (!l.mask.empty() && l.mask.size() != in * l.out)
      throw std::invalid_argument("FC mask size mismatch");
    std::vector<Bus> out(l.out);
    // All weight inputs are allocated before all biases (weight order).
    std::vector<std::vector<Bus>> w(l.out);
    std::vector<std::vector<uint8_t>> mask(l.out);
    for (size_t o = 0; o < l.out; ++o) {
      mask[o].assign(in, 1);
      w[o].assign(in, Bus{});
      for (size_t i = 0; i < in; ++i) {
        if (!l.mask.empty() && !l.mask[o * in + i]) {
          mask[o][i] = 0;
          continue;
        }
        w[o][i] = input_fixed(b, Party::kEvaluator, fmt);
      }
    }
    std::vector<Bus> bias(l.out);
    if (l.has_bias)
      for (size_t o = 0; o < l.out; ++o)
        bias[o] = input_fixed(b, Party::kEvaluator, fmt);

    for (size_t o = 0; o < l.out; ++o) {
      // One lane per output neuron (independent dot products) — the
      // scheduling pass interleaves them into wide AND windows.
      b.set_lane(static_cast<uint32_t>(o));
      // Pruned entries carry empty buses; compact them out.
      std::vector<Bus> xs, ws;
      for (size_t i = 0; i < in; ++i) {
        if (!mask[o][i]) continue;
        xs.push_back(x[i]);
        ws.push_back(w[o][i]);
      }
      Bus acc = xs.empty() ? constant_bus(b, 0, fmt.total_bits)
                           : dot(b, xs, ws, fmt.frac_bits);
      if (l.has_bias) acc = add(b, acc, bias[o]);
      out[o] = acc;
    }
    return out;
  }

  std::vector<Bus> apply_one(const Shape3& shape, const std::vector<Bus>& x,
                             const ConvLayer& l) {
    const size_t oh = pool_out_dim(shape.h, l.k, l.stride);
    const size_t ow = pool_out_dim(shape.w, l.k, l.stride);
    // Weights first (order: oc, ic, ky, kx), then biases.
    std::vector<Bus> w(l.out_ch * shape.c * l.k * l.k);
    for (auto& bus : w) bus = input_fixed(b, Party::kEvaluator, fmt);
    std::vector<Bus> bias(l.out_ch);
    if (l.has_bias)
      for (auto& bus : bias) bus = input_fixed(b, Party::kEvaluator, fmt);

    auto in_at = [&](size_t c, size_t y, size_t xx) -> const Bus& {
      return x[(c * shape.h + y) * shape.w + xx];
    };
    auto w_at = [&](size_t oc, size_t ic, size_t ky, size_t kx) -> const Bus& {
      return w[((oc * shape.c + ic) * l.k + ky) * l.k + kx];
    };

    std::vector<Bus> out(l.out_ch * oh * ow);
    for (size_t oc = 0; oc < l.out_ch; ++oc) {
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          // One lane per output pixel (independent dot products).
          b.set_lane(static_cast<uint32_t>((oc * oh + oy) * ow + ox));
          std::vector<Bus> xs, ws;
          xs.reserve(shape.c * l.k * l.k);
          for (size_t ic = 0; ic < shape.c; ++ic)
            for (size_t ky = 0; ky < l.k; ++ky)
              for (size_t kx = 0; kx < l.k; ++kx) {
                xs.push_back(in_at(ic, oy * l.stride + ky, ox * l.stride + kx));
                ws.push_back(w_at(oc, ic, ky, kx));
              }
          Bus acc = dot(b, xs, ws, fmt.frac_bits);
          if (l.has_bias) acc = add(b, acc, bias[oc]);
          out[(oc * oh + oy) * ow + ox] = acc;
        }
      }
    }
    return out;
  }

  std::vector<Bus> apply_one(const Shape3& shape, const std::vector<Bus>& x,
                             const PoolLayer& l) {
    const size_t oh = pool_out_dim(shape.h, l.k, l.stride);
    const size_t ow = pool_out_dim(shape.w, l.k, l.stride);
    auto in_at = [&](size_t c, size_t y, size_t xx) -> const Bus& {
      return x[(c * shape.h + y) * shape.w + xx];
    };
    std::vector<Bus> out(shape.c * oh * ow);
    for (size_t c = 0; c < shape.c; ++c) {
      for (size_t oy = 0; oy < oh; ++oy) {
        for (size_t ox = 0; ox < ow; ++ox) {
          b.set_lane(static_cast<uint32_t>((c * oh + oy) * ow + ox));
          Bus acc;
          if (l.kind == PoolKind::kMax) {
            for (size_t ky = 0; ky < l.k; ++ky)
              for (size_t kx = 0; kx < l.k; ++kx) {
                const Bus& v = in_at(c, oy * l.stride + ky, ox * l.stride + kx);
                acc = acc.empty() ? v : max_signed(b, acc, v);
              }
          } else {
            for (size_t ky = 0; ky < l.k; ++ky)
              for (size_t kx = 0; kx < l.k; ++kx) {
                const Bus& v = in_at(c, oy * l.stride + ky, ox * l.stride + kx);
                acc = acc.empty() ? v : add(b, acc, v);
              }
            acc = mult_const_fixed(
                b, acc, 1.0 / static_cast<double>(l.k * l.k), fmt);
          }
          out[(c * oh + oy) * ow + ox] = acc;
        }
      }
    }
    return out;
  }

  std::vector<Bus> apply_one(const Shape3&, const std::vector<Bus>& x,
                             const ActLayer& l) {
    std::vector<Bus> out(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      b.set_lane(static_cast<uint32_t>(i));
      out[i] = activation(b, x[i], l.kind, fmt);
    }
    return out;
  }

  std::vector<Bus> apply_one(const Shape3&, const std::vector<Bus>& x,
                             const ArgmaxLayer&) {
    return {argmax(b, x)};
  }
};

}  // namespace

Shape3 layer_output_shape(const Shape3& in, const LayerSpec& layer) {
  if (const auto* fc = std::get_if<FcLayer>(&layer))
    return Shape3{1, 1, fc->out};
  if (const auto* conv = std::get_if<ConvLayer>(&layer))
    return Shape3{pool_out_dim(in.h, conv->k, conv->stride),
                  pool_out_dim(in.w, conv->k, conv->stride), conv->out_ch};
  if (const auto* pool = std::get_if<PoolLayer>(&layer))
    return Shape3{pool_out_dim(in.h, pool->k, pool->stride),
                  pool_out_dim(in.w, pool->k, pool->stride), in.c};
  if (std::holds_alternative<ActLayer>(layer)) return in;
  // Argmax: index bits packed into a single pseudo-element.
  return Shape3{1, 1, 1};
}

Shape3 model_output_shape(const ModelSpec& spec) {
  Shape3 s = spec.input;
  for (const auto& l : spec.layers) s = layer_output_shape(s, l);
  return s;
}

size_t layer_weight_count(const Shape3& in, const LayerSpec& layer) {
  if (const auto* fc = std::get_if<FcLayer>(&layer)) {
    size_t n = 0;
    if (fc->mask.empty()) {
      n = in.flat() * fc->out;
    } else {
      for (uint8_t m : fc->mask) n += m ? 1 : 0;
    }
    if (fc->has_bias) n += fc->out;
    return n;
  }
  if (const auto* conv = std::get_if<ConvLayer>(&layer)) {
    size_t n = conv->out_ch * in.c * conv->k * conv->k;
    if (conv->has_bias) n += conv->out_ch;
    return n;
  }
  return 0;
}

size_t model_weight_count(const ModelSpec& spec) {
  Shape3 s = spec.input;
  size_t n = 0;
  for (const auto& l : spec.layers) {
    n += layer_weight_count(s, l);
    s = layer_output_shape(s, l);
  }
  return n;
}

Circuit compile_model(const ModelSpec& spec) {
  Builder b(spec.name);
  Compiler c{b, spec.fmt};
  Shape3 shape = spec.input;
  std::vector<Bus> x(shape.flat());
  for (auto& bus : x) bus = input_fixed(b, Party::kGarbler, spec.fmt);
  for (const auto& layer : spec.layers) {
    x = c.apply(shape, std::move(x), layer);
    shape = layer_output_shape(shape, layer);
  }
  for (const Bus& bus : x) b.outputs(bus);
  return b.build();
}

std::vector<Circuit> compile_model_layers(const ModelSpec& spec) {
  std::vector<Circuit> out;
  Shape3 shape = spec.input;
  size_t idx = 0;
  for (const auto& layer : spec.layers) {
    Builder b(spec.name + ".layer" + std::to_string(idx++));
    Compiler c{b, spec.fmt};
    // Activations arrive as garbler-class inputs; the protocol driver
    // binds them to carried labels (except for the very first layer,
    // where they are the client's actual data bits).
    std::vector<Bus> x(shape.flat());
    const bool is_argmax = std::holds_alternative<ArgmaxLayer>(layer);
    const size_t bus_width = spec.fmt.total_bits;
    for (auto& bus : x) bus = input_bus(b, Party::kGarbler, bus_width);
    auto y = c.apply(shape, std::move(x), layer);
    for (const Bus& bus : y) b.outputs(bus);
    (void)is_argmax;
    out.push_back(b.build());
    shape = layer_output_shape(shape, layer);
  }
  return out;
}

}  // namespace deepsecure::synth
