#include "gc/material.h"

#include <cstring>
#include <stdexcept>

namespace deepsecure {
namespace {

// Sink channel: garbling against it records the evaluator-bound byte
// stream instead of shipping it.
class ByteSink final : public Channel {
 public:
  void send_bytes(const void* data, size_t n) override {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + n);
  }
  void recv_bytes(void*, size_t) override {
    throw std::logic_error("gc material: offline garbling cannot receive");
  }
  uint64_t bytes_sent() const override { return bytes.size(); }
  uint64_t bytes_received() const override { return 0; }
  // Deliberately not clearing `bytes`: the recording IS the artifact,
  // and a counter reset (e.g. per-phase comm accounting inside a future
  // garbling change) must not truncate it.
  void reset_counters() override {}

  std::vector<uint8_t> bytes;
};

// Source channel: replays a recorded stream to the evaluator.
class ByteSource final : public Channel {
 public:
  explicit ByteSource(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  void send_bytes(const void*, size_t) override {
    throw std::logic_error("gc material: online evaluation cannot send here");
  }
  void recv_bytes(void* data, size_t n) override {
    if (pos_ + n > bytes_.size())
      throw std::runtime_error("gc material: table stream exhausted");
    std::memcpy(data, bytes_.data() + pos_, n);
    pos_ += n;
  }
  uint64_t bytes_sent() const override { return 0; }
  uint64_t bytes_received() const override { return pos_; }
  void reset_counters() override {}

  size_t consumed() const { return pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace

uint64_t chain_fingerprint(const std::vector<Circuit>& chain,
                           bool scheduled) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    // FNV-1a, one byte at a time over the u64.
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(chain.size());
  for (const Circuit& link : chain) {
    // Hash the gate order the endpoints will walk: the scheduled view
    // when the scheduling pass is on (its cache is shared with the
    // garbler/evaluator, so this triggers no extra scheduling work).
    std::shared_ptr<const Circuit> sched;
    const Circuit& c = scheduled ? *(sched = link.gc_scheduled()) : link;
    mix(c.num_wires);
    mix(c.gates.size());
    mix(c.garbler_inputs.size());
    mix(c.evaluator_inputs.size());
    mix(c.state_inputs.size());
    mix(c.outputs.size());
    for (const Gate& g : c.gates)
      mix((uint64_t(g.a) << 32) ^ g.b ^ (uint64_t(g.out) << 16) ^
          (uint64_t(static_cast<uint8_t>(g.op)) << 62));
    for (Wire wire : c.outputs) mix(wire);
  }
  return h;
}

uint64_t chain_fingerprint(const std::vector<Circuit>& chain) {
  return chain_fingerprint(chain, /*scheduled=*/false);
}

GarbledMaterial garble_offline(const std::vector<Circuit>& chain, Block seed,
                               const GcOptions& opt) {
  if (chain.empty())
    throw std::invalid_argument("garble_offline: empty circuit chain");
  GcOptions local = opt;
  local.framed_tables = false;
  // The sink records bytes — borrowed slices would be copied right back
  // into it, so the zero-copy plane buys nothing here.
  local.table_pool = nullptr;

  ByteSink sink;
  Garbler garbler(sink, seed, local);

  GarbledMaterial mat;
  mat.fingerprint = chain_fingerprint(chain, local.schedule);
  mat.delta = garbler.delta();

  Labels carried;
  for (size_t k = 0; k < chain.size(); ++k) {
    const Circuit& c = chain[k];
    Labels g_zeros;
    if (k == 0) {
      g_zeros = garbler.fresh_zeros(c.garbler_inputs.size());
      mat.data_zeros = g_zeros;
    } else {
      if (carried.size() != c.garbler_inputs.size())
        throw std::invalid_argument("garble_offline: layer width mismatch");
      g_zeros = carried;
    }
    const Labels e_zeros = garbler.fresh_zeros(c.evaluator_inputs.size());
    mat.eval_zeros.insert(mat.eval_zeros.end(), e_zeros.begin(),
                          e_zeros.end());
    carried = garbler.garble(c, g_zeros, e_zeros, {});
  }

  mat.decode_bits.resize(carried.size());
  for (size_t i = 0; i < carried.size(); ++i)
    mat.decode_bits[i] = carried[i].lsb() ? 1u : 0u;
  mat.tables = std::move(sink.bytes);
  return mat;
}

BitVec evaluate_material(const std::vector<Circuit>& chain,
                         const EvalMaterial& mat,
                         const Labels& garbler_labels, const GcOptions& opt) {
  if (chain.empty())
    throw std::invalid_argument("evaluate_material: empty circuit chain");
  size_t want = 0;
  for (const Circuit& c : chain) want += c.evaluator_inputs.size();
  if (mat.eval_labels.size() != want)
    throw std::invalid_argument(
        "evaluate_material: evaluator label count mismatch");
  if (mat.decode_bits.size() != chain.back().outputs.size())
    throw std::invalid_argument("evaluate_material: decode bit count mismatch");

  GcOptions local = opt;
  local.framed_tables = false;
  // opt.pool applies: shards only hash — the ByteSource reads happen at
  // enqueue time on this thread, so the replay stream stays in order.

  ByteSource source(mat.tables);
  Evaluator evaluator(source, local);

  size_t consumed = 0;
  Labels carried;
  for (size_t k = 0; k < chain.size(); ++k) {
    const Circuit& c = chain[k];
    const size_t n_e = c.evaluator_inputs.size();
    const Labels e_labels(
        mat.eval_labels.begin() + static_cast<ptrdiff_t>(consumed),
        mat.eval_labels.begin() + static_cast<ptrdiff_t>(consumed + n_e));
    consumed += n_e;
    const Labels& g_labels = k == 0 ? garbler_labels : carried;
    carried = evaluator.evaluate(c, g_labels, e_labels, {});
  }
  if (source.consumed() != mat.tables.size())
    throw std::runtime_error("evaluate_material: trailing table bytes");

  BitVec out(carried.size());
  for (size_t i = 0; i < carried.size(); ++i)
    out[i] = (carried[i].lsb() ? 1u : 0u) ^ mat.decode_bits[i];
  return out;
}

void send_material(Channel& ch, const GarbledMaterial& mat) {
  ch.send_bits(mat.decode_bits);
  ch.send_u64(mat.tables.size());
  if (!mat.tables.empty())
    ch.send_bytes(mat.tables.data(), mat.tables.size());
}

void send_material(Channel& ch, GarbledMaterial&& mat) {
  ch.send_bits(mat.decode_bits);
  ch.send_u64(mat.tables.size());
  if (mat.tables.empty()) return;
  // Donate the table stream: the bytes move into a refcounted holder
  // and ship as ONE borrowed slice — over an asynchronous channel
  // (RingChannel) the push returns without copying the multi-MB
  // payload, and the holder frees when the kernel send completes. Wire
  // bytes are identical to the copying overload.
  IoSlice slice;
  slice.ref = BufferRef::adopt(std::move(mat.tables));
  slice.data = slice.ref.data();
  slice.len = slice.ref.size();
  ch.send_iov(&slice, 1);
}

EvalMaterial recv_material(Channel& ch, uint64_t max_table_bytes,
                           uint64_t max_decode_bits) {
  EvalMaterial mat;
  mat.decode_bits = ch.recv_bits_bounded(max_decode_bits);
  const uint64_t len = ch.recv_u64();
  if (len > max_table_bytes)
    throw std::runtime_error("recv_material: oversized table stream");
  mat.tables.resize(len);
  if (len > 0) ch.recv_bytes(mat.tables.data(), len);
  return mat;
}

}  // namespace deepsecure
