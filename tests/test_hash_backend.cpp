// Backend cross-product tests: every compiled hash backend must compute
// the identical AES function — and therefore identical garbled tables,
// material artifacts, and PRG keystreams — as the scalar software
// oracle. Also covers the selection machinery: env override, forced
// names, and graceful fallback when a named backend's ISA is
// unavailable.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>

#include "circuit/builder.h"
#include "crypto/aes128.h"
#include "crypto/hash_backend.h"
#include "crypto/prg.h"
#include "gc/garble.h"
#include "gc/material.h"
#include "net/party.h"
#include "support/rng.h"

namespace deepsecure {
namespace {

// Restores the process-wide selection (env + auto dispatch) on exit so
// a failing test cannot leak a forced backend into the rest of the run.
class BackendGuard {
 public:
  ~BackendGuard() {
    aes128_force_software(false);
    set_hash_backend("");
  }
};

class ForceSoftwareGuard {
 public:
  ForceSoftwareGuard() { aes128_force_software(true); }
  ~ForceSoftwareGuard() { aes128_force_software(false); }
};

std::vector<Block> random_blocks(size_t n, uint64_t seed) {
  Prg prg(Block{seed, ~seed});
  std::vector<Block> v(n);
  prg.next_blocks(v.data(), n);
  return v;
}

TEST(HashBackend, RegistryHasSoftwareFloor) {
  // Whatever the build flags, the two software backends are always
  // compiled, always available, and scalar is last (the auto-dispatch
  // floor).
  const auto& all = compiled_hash_backends();
  ASSERT_GE(all.size(), 2u);
  EXPECT_STREQ(all.back()->name, "scalar");
  ASSERT_NE(find_hash_backend("bitsliced8"), nullptr);
  EXPECT_TRUE(find_hash_backend("bitsliced8")->available());
  EXPECT_TRUE(find_hash_backend("scalar")->available());
  EXPECT_EQ(find_hash_backend("no-such-kernel"), nullptr);
}

TEST(HashBackend, BitslicedMatchesFips197) {
  const uint8_t kb[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                          0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const uint8_t pb[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                          0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  const uint8_t expect[16] = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                              0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
  const Aes128Key key = aes128_expand(Block::from_bytes(kb));
  Block b = Block::from_bytes(pb);
  detail::aes128_encrypt_batch_bitsliced(key, &b, 1);
  uint8_t out[16];
  b.to_bytes(out);
  EXPECT_EQ(0, std::memcmp(out, expect, 16));
}

// Every compiled backend vs the scalar soft oracle, across every tail
// shape a sweep can see (0..2*width+3 covers full lines, partial lines,
// and the padded remainder paths of all widths).
TEST(HashBackend, EncryptBatchMatchesSoftOracleAllTails) {
  const Aes128Key key = aes128_expand(Block{0xfeed, 0xbeef});
  for (const HashBackend* be : compiled_hash_backends()) {
    if (!be->available()) {
      GTEST_LOG_(INFO) << be->name << " unavailable on this host; skipped";
      continue;
    }
    SCOPED_TRACE(be->name);
    for (size_t n = 0; n <= 2 * be->width + 3; ++n) {
      std::vector<Block> oracle = random_blocks(n, 0x1000 + n);
      std::vector<Block> got = oracle;
      detail::aes128_encrypt_batch_soft(key, oracle.data(), n);
      be->encrypt_batch(key, got.data(), n);
      EXPECT_EQ(oracle, got) << "n=" << n;
    }
  }
}

TEST(HashBackend, GcHashBatchMatchesScalarHash) {
  const auto in = random_blocks(517, 0xabc);
  std::vector<uint64_t> tweaks(in.size());
  for (size_t i = 0; i < tweaks.size(); ++i) tweaks[i] = 7 * i + 3;
  for (const HashBackend* be : compiled_hash_backends()) {
    if (!be->available()) continue;
    SCOPED_TRACE(be->name);
    std::vector<Block> out(in.size());
    gc_hash_batch(*be, in.data(), tweaks.data(), out.data(), in.size());
    for (size_t i = 0; i < in.size(); ++i)
      ASSERT_EQ(out[i], gc_hash(in[i], tweaks[i])) << "i=" << i;
  }
}

TEST(HashBackend, GcHashQuadsMatchScalarHash) {
  const size_t n = 201;
  const auto a0 = random_blocks(n, 0x111);
  const auto b0 = random_blocks(n, 0x222);
  Block delta{0x3333, 0x4444};
  delta.lo |= 1;
  std::vector<uint64_t> tweaks(2 * n);
  for (size_t i = 0; i < tweaks.size(); ++i) tweaks[i] = 10 + i;
  for (const HashBackend* be : compiled_hash_backends()) {
    if (!be->available()) continue;
    SCOPED_TRACE(be->name);
    std::vector<Block> out(4 * n);
    gc_hash_and_quads(*be, a0.data(), b0.data(), delta, tweaks.data(),
                      out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[4 * i + 0], gc_hash(a0[i], tweaks[2 * i]));
      ASSERT_EQ(out[4 * i + 1], gc_hash(a0[i] ^ delta, tweaks[2 * i]));
      ASSERT_EQ(out[4 * i + 2], gc_hash(b0[i], tweaks[2 * i + 1]));
      ASSERT_EQ(out[4 * i + 3], gc_hash(b0[i] ^ delta, tweaks[2 * i + 1]));
    }
  }
}

// ---------------------------------------------------------------------
// Whole-pipeline byte identity: garbled tables and material artifacts.
// ---------------------------------------------------------------------

class RecordChannel : public Channel {
 public:
  void send_bytes(const void* data, size_t n) override {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes.insert(bytes.end(), p, p + n);
  }
  void recv_bytes(void*, size_t) override {
    throw std::logic_error("RecordChannel: recv not supported");
  }
  uint64_t bytes_sent() const override { return bytes.size(); }
  uint64_t bytes_received() const override { return 0; }
  void reset_counters() override { bytes.clear(); }

  std::vector<uint8_t> bytes;
};

Circuit random_mixed_circuit(Rng& rng, int n_gates) {
  Builder b;
  std::vector<Wire> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kGarbler));
  for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kEvaluator));
  for (int g = 0; g < n_gates; ++g) {
    const Wire a = pool[rng.next_below(pool.size())];
    const Wire y = pool[rng.next_below(pool.size())];
    switch (rng.next_below(4)) {
      case 0: pool.push_back(b.xor_(a, y)); break;
      case 1: pool.push_back(b.and_(a, y)); break;
      case 2: pool.push_back(b.or_(a, y)); break;
      default: pool.push_back(b.not_(a)); break;
    }
  }
  for (int o = 0; o < 10; ++o)
    b.output(pool[pool.size() - 1 - static_cast<size_t>(o)]);
  return b.build();
}

std::vector<uint8_t> garble_stream(const Circuit& c, Block seed,
                                   const GcOptions& opt) {
  RecordChannel ch;
  Garbler g(ch, seed, opt);
  const Labels gz = g.fresh_zeros(c.garbler_inputs.size());
  const Labels ez = g.fresh_zeros(c.evaluator_inputs.size());
  g.garble(c, gz, ez, {});
  return std::move(ch.bytes);
}

TEST(HashBackend, GarbledTablesByteIdenticalAcrossBackends) {
  Rng rng(4040);
  for (int trial = 0; trial < 4; ++trial) {
    const Circuit c = random_mixed_circuit(rng, 500);
    const Block seed{rng.next_u64(), rng.next_u64()};
    GcOptions scalar_opt;
    scalar_opt.pipeline = GcPipeline::kScalar;
    const std::vector<uint8_t> oracle = garble_stream(c, seed, scalar_opt);
    for (const HashBackend* be : compiled_hash_backends()) {
      if (!be->available()) continue;
      SCOPED_TRACE(be->name);
      GcOptions opt;
      opt.hash_backend = be;
      EXPECT_EQ(oracle, garble_stream(c, seed, opt)) << "trial " << trial;
    }
  }
}

TEST(HashBackend, MaterialArtifactsByteIdenticalAcrossBackends) {
  Rng rng(5050);
  std::vector<Circuit> chain;
  chain.push_back(random_mixed_circuit(rng, 300));
  const Block seed{77, 88};
  GcOptions scalar_opt;
  scalar_opt.pipeline = GcPipeline::kScalar;
  const GarbledMaterial oracle = garble_offline(chain, seed, scalar_opt);
  for (const HashBackend* be : compiled_hash_backends()) {
    if (!be->available()) continue;
    SCOPED_TRACE(be->name);
    GcOptions opt;
    opt.hash_backend = be;
    const GarbledMaterial got = garble_offline(chain, seed, opt);
    EXPECT_EQ(oracle.tables, got.tables);
    EXPECT_EQ(oracle.fingerprint, got.fingerprint);
    EXPECT_EQ(oracle.data_zeros, got.data_zeros);
    EXPECT_EQ(oracle.eval_zeros, got.eval_zeros);
    EXPECT_EQ(oracle.decode_bits, got.decode_bits);
  }
}

TEST(HashBackend, PrgKeystreamIdenticalAcrossBackends) {
  BackendGuard guard;
  std::vector<uint8_t> oracle;
  ASSERT_TRUE(set_hash_backend("scalar"));
  {
    Prg prg(Block{9, 9});
    oracle.resize(1000);
    prg.fill_bytes(oracle.data(), oracle.size());
  }
  for (const HashBackend* be : compiled_hash_backends()) {
    if (!be->available()) continue;
    SCOPED_TRACE(be->name);
    ASSERT_TRUE(set_hash_backend(be->name));
    Prg prg(Block{9, 9});
    std::vector<uint8_t> got(oracle.size());
    prg.fill_bytes(got.data(), got.size());
    EXPECT_EQ(oracle, got);
  }
}

// ---------------------------------------------------------------------
// Selection machinery.
// ---------------------------------------------------------------------

TEST(HashBackend, SetByNameAndReset) {
  BackendGuard guard;
  ASSERT_TRUE(set_hash_backend("bitsliced8"));
  EXPECT_STREQ(hash_backend().name, "bitsliced8");
  EXPECT_FALSE(set_hash_backend("no-such-kernel"));
  EXPECT_STREQ(hash_backend().name, "bitsliced8");  // unchanged on failure
  ASSERT_TRUE(set_hash_backend(""));
  // Back to auto dispatch: the widest available backend wins.
  EXPECT_TRUE(hash_backend().available());
}

TEST(HashBackend, EnvOverrideSelectsNamedBackend) {
  BackendGuard guard;
  ASSERT_EQ(0, setenv("DEEPSECURE_HASH_BACKEND", "bitsliced8", 1));
  ASSERT_TRUE(set_hash_backend(""));  // re-run env + auto resolution
  EXPECT_STREQ(hash_backend().name, "bitsliced8");
  ASSERT_EQ(0, setenv("DEEPSECURE_HASH_BACKEND", "bogus-kernel", 1));
  ASSERT_TRUE(set_hash_backend(""));
  // Unknown name falls back to auto dispatch instead of failing.
  EXPECT_TRUE(hash_backend().available());
  EXPECT_STRNE(hash_backend().name, "bogus-kernel");
  ASSERT_EQ(0, unsetenv("DEEPSECURE_HASH_BACKEND"));
  ASSERT_TRUE(set_hash_backend(""));
}

TEST(HashBackend, UnsupportedIsaFallsBackCleanly) {
  BackendGuard guard;
  // Forcing software makes the hardware backends unavailable — the same
  // shape as running the binary on a host without the ISA.
  ForceSoftwareGuard soft;
  for (const char* hw : {"aesni8", "vaes16"}) {
    const HashBackend* be = find_hash_backend(hw);
    if (be == nullptr) continue;  // not compiled in this build
    SCOPED_TRACE(hw);
    EXPECT_FALSE(be->available());
    EXPECT_FALSE(set_hash_backend(hw));  // refuses, selection unchanged
  }
  // Auto dispatch lands on a software backend and still hashes right.
  ASSERT_TRUE(set_hash_backend(""));
  EXPECT_TRUE(hash_backend().constant_time ||
              std::string_view(hash_backend().name) == "scalar");
  const auto in = random_blocks(33, 0x77);
  std::vector<uint64_t> tweaks(in.size());
  for (size_t i = 0; i < tweaks.size(); ++i) tweaks[i] = i;
  std::vector<Block> out(in.size());
  gc_hash_batch(in.data(), tweaks.data(), out.data(), in.size());
  for (size_t i = 0; i < in.size(); ++i)
    ASSERT_EQ(out[i], gc_hash(in[i], tweaks[i]));
}

TEST(HashBackend, CpuFeatureStringIsNonEmpty) {
  EXPECT_FALSE(hash_backend_cpu_features().empty());
}

}  // namespace
}  // namespace deepsecure
