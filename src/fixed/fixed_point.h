// Fixed-point number format used throughout the GC circuits.
//
// The paper evaluates with 16-bit numbers: 1 sign bit, 3 integer bits and
// b = 12 fractional bits (representational error <= 2^-13). The format is
// parameterizable so tests can sweep widths; Q(16,12) is the default used
// in every benchmark.
#pragma once

#include <cstdint>
#include <cstddef>

#include "support/bits.h"

namespace deepsecure {

struct FixedFormat {
  size_t total_bits = 16;  // including sign
  size_t frac_bits = 12;

  size_t int_bits() const { return total_bits - frac_bits - 1; }
  double resolution() const { return 1.0 / static_cast<double>(1ll << frac_bits); }
  /// Largest representable value.
  double max_value() const {
    return (static_cast<double>((1ll << (total_bits - 1)) - 1)) * resolution();
  }
  double min_value() const {
    return -static_cast<double>(1ll << (total_bits - 1)) * resolution();
  }
  bool operator==(const FixedFormat&) const = default;
};

inline constexpr FixedFormat kDefaultFormat{16, 12};

/// Two's-complement fixed-point value in a given format. Raw storage is
/// the sign-extended integer `round(x * 2^frac)`.
class Fixed {
 public:
  Fixed() = default;
  Fixed(int64_t raw, FixedFormat fmt) : raw_(raw), fmt_(fmt) {}

  /// Round-to-nearest conversion, saturating at format bounds.
  static Fixed from_double(double x, FixedFormat fmt = kDefaultFormat);
  /// Raw integer interpreted in the format (masked + sign-extended).
  static Fixed from_raw(int64_t raw, FixedFormat fmt = kDefaultFormat);

  double to_double() const;
  int64_t raw() const { return raw_; }
  FixedFormat format() const { return fmt_; }

  /// Little-endian two's-complement bits, fmt.total_bits wide.
  BitVec to_bits() const;
  static Fixed from_bits(const BitVec& bits, FixedFormat fmt = kDefaultFormat);

  // Arithmetic with wrap-around two's-complement semantics — exactly what
  // the circuits implement (no saturation inside the datapath).
  friend Fixed operator+(Fixed a, Fixed b);
  friend Fixed operator-(Fixed a, Fixed b);
  /// Multiply then truncate (arithmetic shift right by frac_bits) — the
  /// behaviour of the MULT circuit block.
  friend Fixed operator*(Fixed a, Fixed b);

  bool operator==(const Fixed& o) const {
    return raw_ == o.raw_ && fmt_ == o.fmt_;
  }

 private:
  static int64_t wrap(int64_t v, FixedFormat fmt);

  int64_t raw_ = 0;
  FixedFormat fmt_ = kDefaultFormat;
};

/// Reference (double-precision) activation functions the circuit variants
/// are measured against in Table 3's error column.
double ref_tanh(double x);
double ref_sigmoid(double x);

/// CORDIC hyperbolic-mode reference model: computes sinh/cosh with the
/// iteration count used by the circuits (k iterations with 3i+1 repeats),
/// so the circuit can be tested bit-for-bit against software.
struct CordicResult {
  double sinh = 0.0;
  double cosh = 0.0;
};
CordicResult ref_cordic_sinh_cosh(double z, size_t iterations);

}  // namespace deepsecure
