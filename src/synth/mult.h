// Signed multiplier blocks with the fixed-point truncation window.
//
// The paper's enhanced matrix-vector multiplication supports signed
// operands (vs. TinyGarble's unsigned realization). Our multiplier is a
// two's-complement array multiplier computed modulo 2^(n+frac): partial
// products are accumulated at width n+frac and the result window
// [frac, frac+n) is returned, which matches `Fixed::operator*` exactly.
#pragma once

#include "synth/int_blocks.h"

namespace deepsecure::synth {

/// Fixed-point multiply: n-bit a, y -> n-bit (a*y) >> frac.
Bus mult_fixed(Builder& b, const Bus& a, const Bus& y, size_t frac);

/// Integer multiply returning the low n bits (frac = 0 window).
inline Bus mult_low(Builder& b, const Bus& a, const Bus& y) {
  return mult_fixed(b, a, y, 0);
}

/// Multiply by a public constant; the builder folds away zero partial
/// products, so sparse constants (power-of-two slopes etc.) are cheap.
Bus mult_const_fixed(Builder& b, const Bus& a, double c, FixedFormat fmt);

}  // namespace deepsecure::synth
