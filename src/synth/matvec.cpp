#include "synth/matvec.h"

#include <stdexcept>

#include "synth/mult.h"

namespace deepsecure::synth {

Bus dot(Builder& b, const std::vector<Bus>& x, const std::vector<Bus>& w,
        size_t frac) {
  return dot_masked(b, x, w, std::vector<uint8_t>(x.size(), 1), frac);
}

Bus dot_masked(Builder& b, const std::vector<Bus>& x,
               const std::vector<Bus>& w, const std::vector<uint8_t>& mask,
               size_t frac) {
  if (x.size() != w.size() || x.size() != mask.size())
    throw std::invalid_argument("dot size mismatch");
  if (x.empty()) throw std::invalid_argument("dot of nothing");
  const size_t n = x[0].size();

  Bus acc;
  for (size_t i = 0; i < x.size(); ++i) {
    if (!mask[i]) continue;  // pruned connection: no gates at all
    const Bus term = mult_fixed(b, x[i], w[i], frac);
    acc = acc.empty() ? term : add(b, acc, term);
  }
  if (acc.empty()) acc = constant_bus(b, 0, n);
  return acc;
}

Circuit make_matvec_circuit(size_t m, size_t n, FixedFormat fmt) {
  Builder b("matvec_" + std::to_string(m) + "x" + std::to_string(n));
  std::vector<Bus> x(m);
  for (auto& bus : x) bus = input_fixed(b, Party::kGarbler, fmt);
  for (size_t col = 0; col < n; ++col) {
    std::vector<Bus> w(m);
    for (auto& bus : w) bus = input_fixed(b, Party::kEvaluator, fmt);
    // One lane per output column: the columns are mutually independent,
    // so the scheduler interleaves their multiplier/adder bit-slices
    // into wide AND windows.
    b.set_lane(static_cast<uint32_t>(col));
    b.outputs(dot(b, x, w, fmt.frac_bits));
  }
  return b.build();
}

Circuit make_mac_step_circuit(FixedFormat fmt) {
  Builder b("mac_step");
  const Bus x = input_fixed(b, Party::kGarbler, fmt);
  const Bus w = input_fixed(b, Party::kEvaluator, fmt);
  const Bus acc = b.state_inputs(fmt.total_bits);
  const Bus prod = mult_fixed(b, x, w, fmt.frac_bits);
  const Bus next = add(b, acc, prod);
  b.set_state_next(next);
  b.outputs(next);
  return b.build();
}

}  // namespace deepsecure::synth
