// Buffered streaming of 128-bit blocks over a Channel. Garbled tables
// dominate traffic (two blocks per AND gate); per-block channel calls
// would serialize on the channel mutex, so both sides batch through a
// fixed-size local buffer with an identical, deterministic flush policy.
//
// Two wire formats:
//   * monolithic (default): the raw block stream, chunked only by the
//     local buffer capacity. The reader must be told the total length
//     up front (expect()).
//   * framed: a sequence of length-prefixed frames
//       [u32 payload_bytes][payload]
//     aligned to garbling batch-window boundaries (mark_window()), so
//     the evaluator can consume tables window-by-window while the
//     garbler is still producing later windows — the streaming overlap
//     the runtime/ subsystem builds on. Windows smaller than
//     kGcMinFrameBlocks are coalesced into one frame to bound header
//     overhead on flush-heavy (ripple-carry) netlists.
//
// Schedule-aware frame sizing: mark_window() distinguishes dependency
// flushes (an AND-level boundary under the width scheduler — a real
// barrier in the gate order) from capacity flushes (the hash window hit
// kGcMaxBatchWindow mid-level). Only level boundaries cut frames, so a
// wide scheduled level whose ANDs drain as several capacity windows
// ships as ONE frame instead of one frame per window; the local buffer
// capacity still bounds the frame size (and thus writer memory). Frames
// are self-describing, so resizing them never desyncs the reader, and
// the concatenated payload stays byte-identical either way.
// Frame headers carry payload sizes only; the framed payload bytes,
// concatenated, are byte-identical to the monolithic stream (asserted in
// tests/test_runtime.cpp).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "crypto/block.h"
#include "net/channel.h"

namespace deepsecure {

/// Minimum blocks per table frame (16 KiB): windows flushed closer
/// together than this are coalesced into one frame.
inline constexpr size_t kGcMinFrameBlocks = 1024;

class BlockWriter {
 public:
  explicit BlockWriter(Channel& ch, size_t capacity = 1 << 15,
                       bool framed = false)
      : ch_(ch), framed_(framed) {
    buf_.reserve(capacity);
    capacity_ = capacity;
  }
  // Destruction during stack unwind (garbling aborted by a transport
  // failure) must not throw a second exception out of flush() — that
  // would turn a recoverable connection reset into std::terminate.
  ~BlockWriter() {
    try {
      flush();
    } catch (...) {
      // Peer already gone: the bytes have nowhere to go. Drop them.
    }
  }

  void put(Block b) {
    buf_.push_back(b);
    if (pending_blocks() >= capacity_) flush();
  }

  /// Zero-copy enqueue: stage `n` blocks living in refcounted memory
  /// (a pool slab or adopted buffer — support/buffer_pool.h) WITHOUT
  /// copying them into the local buffer. The blocks ship as borrowed
  /// iovec slices on the next flush, with `ref` pinning the backing
  /// memory until the transport is done with it; the caller must not
  /// mutate the blocks after handing them over.
  ///
  /// Byte-identity with the copy path is preserved by construction: a
  /// borrowed run splits at exactly the capacity boundaries where the
  /// equivalent put() loop would have flushed, so frame cuts — and
  /// therefore the framed wire stream — match the copy path bit for bit
  /// (asserted in tests/test_runtime.cpp).
  void put_borrowed(const Block* data, size_t n, BufferRef ref) {
    if (!buf_.empty()) {
      // Copied blocks are already queued ahead of us (put()
      // interleaving); degrade to copy so wire order follows call order
      // — flush() emits borrowed slices before the copied tail.
      for (size_t i = 0; i < n; ++i) put(data[i]);
      return;
    }
    while (n > 0) {
      const size_t take = std::min(n, capacity_ - pending_blocks());
      slices_.push_back(Borrowed{data, take, ref});
      borrowed_blocks_ += take;
      data += take;
      n -= take;
      if (pending_blocks() >= capacity_) flush();
    }
  }

  /// Batch-window boundary: in framed mode, ship the buffered windows as
  /// one frame once enough has accumulated. `level_boundary` says whether
  /// this drain is a dependency flush (an AND-level boundary in the
  /// scheduled order — a frame-worthy barrier) or a mere capacity drain
  /// mid-level; capacity drains keep buffering so a wide level ships as
  /// one frame (see file header). No-op in monolithic mode (the capacity
  /// policy alone governs chunking).
  void mark_window(bool level_boundary = true) {
    if (framed_ && level_boundary && pending_blocks() >= kGcMinFrameBlocks)
      flush();
  }

  void flush() {
    const size_t blocks = pending_blocks();
    if (blocks == 0) return;
    // Every block that went through buf_ was memcpy'd once by put() —
    // the staging copy the borrowed path exists to avoid. Counted here
    // (not per put()) to keep the hot loop tight.
    if (!buf_.empty())
      netstat::bytes_copied().add(buf_.size() * sizeof(Block));
    if (slices_.empty()) {
      // Pure copy path: unchanged wire behavior (and still one
      // contiguous send, which BufferedChannel may coalesce further).
      if (framed_) {
        const uint32_t len = static_cast<uint32_t>(blocks * sizeof(Block));
        ch_.send_bytes(&len, sizeof(len));
      }
      ch_.send_bytes(buf_.data(), buf_.size() * sizeof(Block));
      buf_.clear();
      return;
    }
    // Vectored path: one send_iov carrying [u32 header][borrowed
    // slices...][copied tail]. The header and buf_ slices are ref-less
    // (consumed before send_iov returns, per the IoSlice contract);
    // borrowed slices move their refs into the transport, which
    // releases each slab only when its bytes are truly shipped.
    iov_.clear();
    const uint32_t len = static_cast<uint32_t>(blocks * sizeof(Block));
    if (framed_) iov_.push_back(IoSlice{&len, sizeof(len), BufferRef{}});
    for (Borrowed& s : slices_)
      iov_.push_back(
          IoSlice{s.data, s.blocks * sizeof(Block), std::move(s.ref)});
    if (!buf_.empty())
      iov_.push_back(
          IoSlice{buf_.data(), buf_.size() * sizeof(Block), BufferRef{}});
    ch_.send_iov(iov_.data(), iov_.size());
    iov_.clear();
    slices_.clear();
    borrowed_blocks_ = 0;
    buf_.clear();
  }

 private:
  struct Borrowed {
    const Block* data;
    size_t blocks;
    BufferRef ref;
  };

  size_t pending_blocks() const { return buf_.size() + borrowed_blocks_; }

  Channel& ch_;
  std::vector<Block> buf_;
  std::vector<Borrowed> slices_;
  std::vector<IoSlice> iov_;
  size_t borrowed_blocks_ = 0;
  size_t capacity_;
  bool framed_;
};

class BlockReader {
 public:
  /// Monolithic mode: `total` blocks will be consumed overall (declared
  /// via expect()); reads arrive in the writer's flush granularity.
  /// Framed mode: frames self-describe, expect() is not needed.
  explicit BlockReader(Channel& ch, size_t capacity = 1 << 15,
                       bool framed = false)
      : ch_(ch), capacity_(capacity), framed_(framed) {}

  Block get() {
    if (pos_ == buf_.size()) refill();
    return buf_[pos_++];
  }

  /// Number of blocks already buffered but not yet consumed.
  size_t buffered() const { return buf_.size() - pos_; }

  /// Prepare to read exactly `n` more blocks (bounds refill sizes so we
  /// never read past the logical stream). Monolithic mode only.
  void expect(size_t n) { remaining_ += n; }

 private:
  void refill() {
    if (framed_) {
      uint32_t len = 0;
      ch_.recv_bytes(&len, sizeof(len));
      if (len == 0 || len % sizeof(Block) != 0 || len > (64u << 20))
        throw std::runtime_error("gc: malformed table frame header");
      buf_.resize(len / sizeof(Block));
      pos_ = 0;
      ch_.recv_bytes(buf_.data(), len);
      return;
    }
    const size_t n = std::min(capacity_, remaining_);
    buf_.resize(n);
    pos_ = 0;
    ch_.recv_bytes(buf_.data(), n * sizeof(Block));
    remaining_ -= n;
  }

  Channel& ch_;
  std::vector<Block> buf_;
  size_t pos_ = 0;
  size_t capacity_;
  size_t remaining_ = 0;
  bool framed_;
};

}  // namespace deepsecure
