#include <gtest/gtest.h>

#include "circuit/builder.h"
#include "gc/garble.h"
#include "net/party.h"
#include "support/rng.h"

namespace deepsecure {
namespace {

// Garble + evaluate a circuit over a real channel pair and compare with
// plaintext evaluation — the core correctness oracle for the GC engine.
BitVec gc_run(const Circuit& c, const BitVec& g_bits, const BitVec& e_bits,
              Block seed = Block{42, 42}) {
  BitVec decoded;
  run_two_party(
      [&](Channel& ch) {
        Garbler g(ch, seed);
        const Labels g_zeros = g.fresh_zeros(g_bits.size());
        const Labels e_zeros = g.fresh_zeros(e_bits.size());
        g.send_active(g_bits, g_zeros);
        // Test-only shortcut: send the evaluator's active labels directly
        // (the OT path is exercised in test_ot / test_protocol).
        BitVec eb = e_bits;
        std::vector<Block> active(e_bits.size());
        for (size_t i = 0; i < e_bits.size(); ++i)
          active[i] = eb[i] ? (e_zeros[i] ^ g.delta()) : e_zeros[i];
        if (!active.empty())
          ch.send_bytes(active.data(), active.size() * sizeof(Block));
        const Labels out = g.garble(c, g_zeros, e_zeros, {});
        decoded = g.decode_outputs(out);
      },
      [&](Channel& ch) {
        Evaluator e(ch);
        const Labels g_labels = e.recv_active(g_bits.size());
        const Labels e_labels = e.recv_active(e_bits.size());
        const Labels out = e.evaluate(c, g_labels, e_labels, {});
        e.send_outputs(out);
      });
  return decoded;
}

TEST(Garble, SingleGatesAllInputCombos) {
  for (const bool use_and : {false, true}) {
    Builder b;
    const Wire x = b.input(Party::kGarbler);
    const Wire y = b.input(Party::kEvaluator);
    b.output(use_and ? b.and_(x, y) : b.xor_(x, y));
    const Circuit c = b.build();
    for (uint8_t xv = 0; xv < 2; ++xv)
      for (uint8_t yv = 0; yv < 2; ++yv) {
        const BitVec got = gc_run(c, {xv}, {yv});
        EXPECT_EQ(got[0], use_and ? (xv & yv) : (xv ^ yv))
            << "and=" << use_and << " x=" << int(xv) << " y=" << int(yv);
      }
  }
}

TEST(Garble, ConstantsAndNots) {
  Builder b;
  const Wire x = b.input(Party::kGarbler);
  b.output(b.not_(x));
  b.output(b.and_(b.not_(x), b.const_bit(true)));
  b.output(b.const_bit(true));
  b.output(b.const_bit(false));
  const Circuit c = b.build();
  for (uint8_t xv = 0; xv < 2; ++xv) {
    const BitVec got = gc_run(c, {xv}, {});
    EXPECT_EQ(got[0], 1 - xv);
    EXPECT_EQ(got[1], 1 - xv);
    EXPECT_EQ(got[2], 1);
    EXPECT_EQ(got[3], 0);
  }
}

TEST(Garble, RandomCircuitsMatchPlaintextEval) {
  Rng rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    // Random DAG of XOR/AND/NOT over 8 garbler + 8 evaluator inputs.
    Builder b;
    std::vector<Wire> pool;
    for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kGarbler));
    for (int i = 0; i < 8; ++i) pool.push_back(b.input(Party::kEvaluator));
    for (int g = 0; g < 120; ++g) {
      const Wire a = pool[rng.next_below(pool.size())];
      const Wire y = pool[rng.next_below(pool.size())];
      switch (rng.next_below(4)) {
        case 0: pool.push_back(b.xor_(a, y)); break;
        case 1: pool.push_back(b.and_(a, y)); break;
        case 2: pool.push_back(b.or_(a, y)); break;
        default: pool.push_back(b.not_(a)); break;
      }
    }
    for (int o = 0; o < 10; ++o)
      b.output(pool[pool.size() - 1 - static_cast<size_t>(o)]);
    const Circuit c = b.build();

    BitVec g_bits(8), e_bits(8);
    for (auto& v : g_bits) v = rng.next_bool();
    for (auto& v : e_bits) v = rng.next_bool();

    const BitVec expect = c.eval(g_bits, e_bits);
    const BitVec got = gc_run(c, g_bits, e_bits,
                              Block{rng.next_u64(), rng.next_u64()});
    EXPECT_EQ(got, expect) << "trial " << trial;
  }
}

TEST(Garble, SequentialStateCarriesAcrossCycles) {
  // 8-bit accumulator: acc += garbler nibble per cycle.
  Builder b;
  std::vector<Wire> in(4);
  for (auto& w : in) w = b.input(Party::kGarbler);
  std::vector<Wire> acc = b.state_inputs(8);
  std::vector<Wire> next(8);
  Wire carry = b.const_bit(false);
  for (int i = 0; i < 8; ++i) {
    const Wire ai = i < 4 ? in[i] : b.const_bit(false);
    const Wire axc = b.xor_(acc[i], carry);
    const Wire bxc = b.xor_(ai, carry);
    next[i] = b.xor_(axc, ai);
    carry = b.xor_(carry, b.and_(axc, bxc));
  }
  b.set_state_next(next);
  b.outputs(next);
  const Circuit step = b.build();

  const std::vector<uint64_t> nibbles{3, 7, 15, 1, 9};
  uint64_t expect = 0;
  for (uint64_t n : nibbles) expect = (expect + n) & 0xFF;

  BitVec decoded;
  run_two_party(
      [&](Channel& ch) {
        Garbler g(ch, Block{7, 7});
        Labels state = g.fresh_zeros(8);
        g.send_active(BitVec(8, 0), state);
        Labels out;
        for (uint64_t n : nibbles) {
          const Labels in_zeros = g.fresh_zeros(4);
          g.send_active(to_bits(n, 4), in_zeros);
          Labels next_state;
          out = g.garble(step, in_zeros, {}, state, &next_state);
          state = std::move(next_state);
        }
        decoded = g.decode_outputs(out);
      },
      [&](Channel& ch) {
        Evaluator e(ch);
        Labels state = e.recv_active(8);
        Labels out;
        for (size_t t = 0; t < nibbles.size(); ++t) {
          const Labels in_labels = e.recv_active(4);
          Labels next_state;
          out = e.evaluate(step, in_labels, {}, state, &next_state);
          state = std::move(next_state);
        }
        e.send_outputs(out);
      });
  EXPECT_EQ(from_bits(decoded), expect);
}

TEST(Garble, DecodeInfoPathAgrees) {
  Builder b;
  const Wire x = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kEvaluator);
  b.output(b.and_(x, y));
  b.output(b.xor_(x, y));
  const Circuit c = b.build();

  BitVec evaluator_view;
  run_two_party(
      [&](Channel& ch) {
        Garbler g(ch, Block{3, 1});
        const Labels gz = g.fresh_zeros(1);
        const Labels ez = g.fresh_zeros(1);
        g.send_active({1}, gz);
        std::vector<Block> active{ez[0] ^ g.delta()};  // evaluator bit = 1
        ch.send_bytes(active.data(), sizeof(Block));
        const Labels out = g.garble(c, gz, ez, {});
        g.send_decode_info(out);
      },
      [&](Channel& ch) {
        Evaluator e(ch);
        const Labels gl = e.recv_active(1);
        const Labels el = e.recv_active(1);
        const Labels out = e.evaluate(c, gl, el, {});
        evaluator_view = e.decode_with_info(out);
      });
  EXPECT_EQ(evaluator_view, (BitVec{1, 0}));
}

TEST(Garble, CommunicationIsTwoBlocksPerAnd) {
  Builder b;
  const Wire x = b.input(Party::kGarbler);
  const Wire y = b.input(Party::kEvaluator);
  Wire acc = b.and_(x, y);
  for (int i = 0; i < 9; ++i) acc = b.and_(acc, b.xor_(x, acc));
  b.output(acc);
  const Circuit c = b.build();
  const uint64_t n_and = c.stats().num_and;

  const auto stats = run_two_party(
      [&](Channel& ch) {
        Garbler g(ch, Block{5, 5});
        const Labels gz = g.fresh_zeros(1);
        const Labels ez = g.fresh_zeros(1);
        g.send_active({1}, gz);
        std::vector<Block> active{ez[0]};
        ch.send_bytes(active.data(), sizeof(Block));
        const Labels out = g.garble(c, gz, ez, {});
        g.decode_outputs(out);
      },
      [&](Channel& ch) {
        Evaluator e(ch);
        const Labels gl = e.recv_active(1);
        const Labels el = e.recv_active(1);
        const Labels out = e.evaluate(c, gl, el, {});
        e.send_outputs(out);
      });
  // garbler -> evaluator: 2 consts + 2 input labels + 2 blocks per AND.
  EXPECT_EQ(stats.a_to_b_bytes, (4 + 2 * n_and) * 16);
}

}  // namespace
}  // namespace deepsecure
