#include <gtest/gtest.h>

#include "core/benchmark_zoo.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"

namespace deepsecure::cost {
namespace {

TEST(CostModel, Table2FormulasAtPaperConstants) {
  // Reconstruct benchmark 1's Table 4 row from its published gate
  // counts: Comm = 2.47e7 * 32 B = 790.4 MB; Comp = (4.31e7*62 +
  // 2.47e7*164)/3.4e9 = 1.977 s; Exec = Comm / 81.8 MB/s = 9.66 s.
  synth::GateCount g{static_cast<uint64_t>(4.31e7),
                     static_cast<uint64_t>(2.47e7)};
  const NetworkCost c = cost_from_gates(g);
  EXPECT_NEAR(c.comm_bytes / 1e6, 790.4, 1.0);
  EXPECT_NEAR(c.comp_seconds, 1.98, 0.02);
  EXPECT_NEAR(c.exec_seconds, 9.66, 0.1);
}

TEST(CostModel, ExecutionIsCommBoundAtPaperBandwidth) {
  for (const auto& z : core::paper_zoo()) {
    const NetworkCost c = cost_of_model(z.base);
    EXPECT_GT(c.comm_bytes / GcCostParams{}.bandwidth_bytes_per_s,
              c.comp_seconds)
        << z.name;
    EXPECT_GT(c.exec_seconds, 0.0);
  }
}

TEST(CostModel, BandwidthScalesExecution) {
  synth::GateCount g{1000000, 1000000};
  GcCostParams fast;
  fast.bandwidth_bytes_per_s = 1e9;
  GcCostParams slow;
  slow.bandwidth_bytes_per_s = 1e6;
  EXPECT_LT(cost_from_gates(g, fast).exec_seconds,
            cost_from_gates(g, slow).exec_seconds);
}

TEST(Zoo, ArchitecturesMatchPaperShapes) {
  const auto zoo = core::paper_zoo();
  ASSERT_EQ(zoo.size(), 4u);
  // B2 = LeNet-300-100: ~267K parameters.
  const size_t b2_params = synth::model_weight_count(zoo[1].base);
  EXPECT_NEAR(static_cast<double>(b2_params), 266610.0, 10.0);
  // B3: 617-50-26.
  const size_t b3_params = synth::model_weight_count(zoo[2].base);
  EXPECT_EQ(b3_params, 617u * 50 + 50 + 50 * 26 + 26);
  // B4: 12.26M MACs worth of parameters.
  const size_t b4_params = synth::model_weight_count(zoo[3].base);
  EXPECT_EQ(b4_params, 5625u * 2000 + 2000 + 2000 * 500 + 500 + 500 * 19 + 19);
}

TEST(Zoo, CompactionReducesGatesRoughlyAsPaper) {
  for (const auto& z : core::paper_zoo()) {
    const auto base = synth::count_model(z.base);
    const auto compact = synth::count_model(z.compact);
    const double improvement =
        static_cast<double>(base.num_non_xor) /
        static_cast<double>(compact.num_non_xor);
    // Within a factor ~1.6 of the paper's reported improvement.
    EXPECT_GT(improvement, z.paper_improvement / 1.6) << z.name;
    EXPECT_LT(improvement, z.paper_improvement * 1.6) << z.name;
  }
}

TEST(Zoo, GateCountsWithinFactorOfPaper) {
  // Our multiplier costs more non-XOR than the paper's synthesized
  // block (see EXPERIMENTS.md); totals must stay within ~4x and scale
  // ordering must match.
  const auto zoo = core::paper_zoo();
  double prev = 0.0;
  for (const auto& z : {zoo[2], zoo[0], zoo[1], zoo[3]}) {  // ascending size
    const auto g = synth::count_model(z.base);
    EXPECT_GT(static_cast<double>(g.num_non_xor), z.paper_base.num_non_xor / 4)
        << z.name;
    EXPECT_LT(static_cast<double>(g.num_non_xor), z.paper_base.num_non_xor * 4)
        << z.name;
    EXPECT_GT(static_cast<double>(g.num_non_xor), prev) << z.name;
    prev = static_cast<double>(g.num_non_xor);
  }
}

TEST(Calibration, MeasuresPositiveRates) {
  const Calibration cal = calibrate(20000);
  EXPECT_GT(cal.non_xor_gates_per_s, 1e4);
  EXPECT_GT(cal.xor_gates_per_s, cal.non_xor_gates_per_s);  // XOR is free
  EXPECT_GT(cal.ot_per_s, 100.0);
  EXPECT_GT(cal.ns_per_non_xor, 0.0);
}

}  // namespace
}  // namespace deepsecure::cost
