// Figure 5 reproduction: the GC timing diagram for a sequential
// circuit — per-clock-cycle garbling / OT / evaluation phases measured
// on a live run, demonstrating that while the evaluator processes cycle
// t the garbler is already garbling cycle t+1 (total time is NOT the sum
// of both parties' work).
#include <algorithm>
#include <cstdio>

#include "core/deepsecure.h"
#include "net/party.h"
#include "synth/matvec.h"
#include "synth/mult.h"

using namespace deepsecure;

namespace {

// A step circuit heavy enough that per-cycle times are measurable:
// `width` MACs per cycle with an accumulator register file.
Circuit wide_mac_step(size_t width, FixedFormat fmt) {
  Builder b("fig5_step");
  using namespace synth;
  std::vector<Bus> acc_next;
  for (size_t i = 0; i < width; ++i) {
    const Bus x = input_fixed(b, Party::kGarbler, fmt);
    const Bus w = input_fixed(b, Party::kEvaluator, fmt);
    const Bus acc = b.state_inputs(fmt.total_bits);
    const Bus next = add(b, acc, mult_fixed(b, x, w, fmt.frac_bits));
    acc_next.push_back(next);
  }
  std::vector<Wire> state_next, outs;
  for (const auto& bus : acc_next)
    for (Wire w : bus) {
      state_next.push_back(w);
      outs.push_back(w);
    }
  b.set_state_next(state_next);
  for (Wire w : outs) b.output(w);
  return b.build();
}

}  // namespace

int main() {
  std::printf("Figure 5: GC phase timing for a sequential circuit\n\n");

  const FixedFormat fmt = kDefaultFormat;
  const size_t width = 192;  // MACs per cycle
  const size_t cycles = 12;
  const Circuit step = wide_mac_step(width, fmt);
  std::printf("step circuit: %llu non-XOR gates/cycle, %zu cycles\n",
              static_cast<unsigned long long>(step.stats().num_and), cycles);

  Rng rng(5);
  BitVec data, weights;
  for (size_t t = 0; t < cycles; ++t)
    for (size_t i = 0; i < width; ++i) {
      const auto xb = Fixed::from_double(rng.next_uniform(-0.2, 0.2)).to_bits();
      const auto wb = Fixed::from_double(rng.next_uniform(-0.2, 0.2)).to_bits();
      data.insert(data.end(), xb.begin(), xb.end());
      weights.insert(weights.end(), wb.begin(), wb.end());
    }

  SessionTrace g_trace, e_trace;
  run_two_party(
      [&](Channel& ch) {
        GarblerSession s(ch, Block{55, 56});
        s.run_sequential(step, cycles, data);
        g_trace = s.trace();
      },
      [&](Channel& ch) {
        EvaluatorSession s(ch);
        s.run_sequential(step, cycles, weights);
        e_trace = s.trace();
      });

  std::printf("\nper-cycle phase durations (ms):\n");
  std::printf("  %-6s %-12s %-12s %-12s\n", "cycle", "garble(A)", "OT/xfer",
              "eval(B)");
  double g_total = 0, e_total = 0;
  for (size_t t = 0; t < cycles; ++t) {
    const auto& g = g_trace.phases[t];
    const auto& e = e_trace.phases[t];
    std::printf("  %-6zu %-12.3f %-12.3f %-12.3f\n", t, g.garble_s * 1e3,
                g.ot_s * 1e3 + e.ot_s * 1e3, e.eval_s * 1e3);
    g_total += g.garble_s;
    e_total += e.eval_s;
  }

  const double wall =
      std::max(g_trace.total_s - g_trace.setup_s,
               e_trace.total_s - e_trace.setup_s);
  std::printf("\npipelining (Alice garbles cycle t+1 while Bob evaluates t):\n");
  std::printf("  garbler busy (garbling)   : %.3f s\n", g_total);
  std::printf("  evaluator busy (evaluating): %.3f s\n", e_total);
  std::printf("  one-time OT setup          : %.3f s (excluded below)\n",
              std::max(g_trace.setup_s, e_trace.setup_s));
  std::printf("  wall clock (post-setup)    : %.3f s vs serial sum %.3f s\n",
              wall, g_total + e_total);
  std::printf("\n  total execution %.0f%% of the serial garble+eval sum ->\n"
              "  the protocol is NOT the sum of both parties' work (Fig. 5)\n",
              100.0 * wall / (g_total + e_total));
  return 0;
}
