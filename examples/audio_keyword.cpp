// Benchmark-3 scenario: a voice-assistant vendor classifies spoken
// letters without hearing the audio. Full 617-feature ISOLET-like
// pipeline with the paper's architecture (617-50FC-Tanh-26FC-Softmax)
// at reduced hidden width so the demo runs in seconds, plus the
// speed/accuracy trade-off across Tanh realizations (Table 3's variants).
#include <cstdio>

#include "core/deepsecure.h"
#include "data/synthetic.h"

using namespace deepsecure;

int main() {
  std::printf("DeepSecure audio benchmark (Tanh DNN)\n");
  std::printf("=====================================\n\n");

  const nn::Dataset ds = data::make_isolet_like(520, 5);
  const nn::Split split = nn::split_dataset(ds, 0.85);

  Rng rng(11);
  nn::Network model(nn::Shape{1, 1, 617});
  model.dense(24, rng).act(nn::Act::kTanh).dense(26, rng);
  nn::TrainConfig tc;
  tc.epochs = 14;
  tc.lr = 0.005f;  // wide inputs need a smaller step
  nn::train(model, split.train, tc);
  std::printf("trained DNN 617-24-26, test accuracy %.1f%%\n",
              100.0 * nn::accuracy(model, split.test));
  nn::scale_for_fixed(model, split.train.x);

  // Tanh realization sweep: gate budget vs agreement with the float
  // model (the speed/accuracy dial of Section 4.2).
  const synth::ActKind variants[] = {
      synth::ActKind::kTanhPL, synth::ActKind::kTanhSeg,
      synth::ActKind::kTanhCORDIC};
  for (const auto variant : variants) {
    SecureInferenceOptions opt;
    opt.tanh_variant = variant;
    opt.seed = Block{5, 5};
    const auto res = secure_infer(model, split.test.x[0], opt);
    std::printf("%-14s non-XOR %8llu  comm %6.1f MB  label %zu  wall %.2fs\n",
                synth::act_kind_name(variant).c_str(),
                static_cast<unsigned long long>(res.gates.num_non_xor),
                static_cast<double>(res.client_to_server_bytes) / 1e6,
                res.label, res.wall_seconds);
  }

  std::printf("\nfloat-model label for the same sample: %zu (true %zu)\n",
              model.predict(split.test.x[0]), split.test.y[0]);
  return 0;
}
